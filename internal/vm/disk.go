// Package vm simulates the virtual-memory mechanism M3 relies on:
// a fixed-size page cache with LRU eviction, kernel-style sequential
// read-ahead, and a disk whose service time is accounted in simulated
// seconds.
//
// The real OS behaviour (Linux page cache + madvise read-ahead) is
// exercised by internal/mmap; this package exists so the paper's
// 10–190 GB experiments (RAM = 32 GB, Figure 1a) can be regenerated
// deterministically on hardware that has neither 190 GB of disk to
// spare nor 32 GB of RAM. The first-order cost model — pages fault in
// at disk bandwidth, sequential scans trigger read-ahead, a working
// set below RAM never faults twice — is exactly what produces the
// paper's two-slope linear curve.
package vm

import "fmt"

// DiskModel describes a storage device in simulated seconds.
type DiskModel struct {
	// BandwidthBytes is the sustained sequential read bandwidth in
	// bytes per simulated second.
	BandwidthBytes float64
	// WriteBandwidthBytes is the sustained sequential write bandwidth;
	// zero selects BandwidthBytes (a symmetric device).
	WriteBandwidthBytes float64
	// SeekSeconds is the penalty for a non-contiguous request.
	SeekSeconds float64
	// RequestSeconds is the fixed per-request overhead (command
	// dispatch, interrupt handling).
	RequestSeconds float64
}

// Validate reports whether the model is usable.
func (d DiskModel) Validate() error {
	if d.BandwidthBytes <= 0 {
		return fmt.Errorf("vm: disk bandwidth must be positive, got %g", d.BandwidthBytes)
	}
	if d.WriteBandwidthBytes < 0 {
		return fmt.Errorf("vm: negative disk write bandwidth %g", d.WriteBandwidthBytes)
	}
	if d.SeekSeconds < 0 || d.RequestSeconds < 0 {
		return fmt.Errorf("vm: negative disk latency")
	}
	return nil
}

// ReadTime returns the simulated service time for a single request of
// n bytes. contiguous indicates the request starts where the previous
// one ended, skipping the seek penalty.
func (d DiskModel) ReadTime(n int64, contiguous bool) float64 {
	if n <= 0 {
		return 0
	}
	t := d.RequestSeconds + float64(n)/d.BandwidthBytes
	if !contiguous {
		t += d.SeekSeconds
	}
	return t
}

// WriteTime returns the simulated service time for writing one request
// of n bytes — write-back of evicted dirty pages. Writes stream at the
// device's write bandwidth and pay the same per-request latencies as
// reads; contiguous indicates the request starts where the previous
// write-back ended, skipping the seek penalty.
func (d DiskModel) WriteTime(n int64, contiguous bool) float64 {
	if n <= 0 {
		return 0
	}
	bw := d.WriteBandwidthBytes
	if bw <= 0 {
		bw = d.BandwidthBytes
	}
	t := d.RequestSeconds + float64(n)/bw
	if !contiguous {
		t += d.SeekSeconds
	}
	return t
}

// SSD returns a model of the paper's OCZ RevoDrive 350-class PCIe SSD
// (~1.6 GB/s effective sequential read; the device is rated 1.8 GB/s
// read, 1.7 GB/s write — the same derating gives ~1.5 GB/s effective
// write).
func SSD() DiskModel {
	return DiskModel{
		BandwidthBytes:      1.64e9,
		WriteBandwidthBytes: 1.5e9,
		SeekSeconds:         60e-6,
		RequestSeconds:      15e-6,
	}
}

// HDD returns a model of a 7200 RPM spinning disk, used by ablation
// benches to show M3's sensitivity to storage speed (§3.1: "strong
// potential for reaching even higher speed if we use faster disks").
// Spinning media reads and writes at the same platter rate, so the
// write bandwidth is left to default to the read bandwidth.
func HDD() DiskModel {
	return DiskModel{
		BandwidthBytes: 150e6,
		SeekSeconds:    8e-3,
		RequestSeconds: 100e-6,
	}
}

// RAID0 returns an n-way stripe over the given model: n× bandwidth
// in both directions, same latencies. The paper calls out RAID 0 as a
// configuration that could lift M3's I/O bound.
func RAID0(base DiskModel, n int) DiskModel {
	if n < 1 {
		n = 1
	}
	base.BandwidthBytes *= float64(n)
	base.WriteBandwidthBytes *= float64(n)
	return base
}
