package optimize

import (
	"context"
	"math"
	"testing"
)

// quadratic returns an Objective for f(x) = Σ cᵢ(xᵢ-tᵢ)², minimum at t.
func quadratic(c, t []float64) Objective {
	return FuncObjective{N: len(c), F: func(x, grad []float64) float64 {
		var f float64
		for i := range x {
			d := x[i] - t[i]
			f += c[i] * d * d
			grad[i] = 2 * c[i] * d
		}
		return f
	}}
}

// rosenbrock is the classic banana function, minimum 0 at (1,...,1).
func rosenbrock(n int) Objective {
	return FuncObjective{N: n, F: func(x, grad []float64) float64 {
		var f float64
		for i := range grad {
			grad[i] = 0
		}
		for i := 0; i+1 < n; i++ {
			a := x[i+1] - x[i]*x[i]
			b := 1 - x[i]
			f += 100*a*a + b*b
			grad[i] += -400*x[i]*a - 2*b
			grad[i+1] += 200 * a
		}
		return f
	}}
}

func TestLBFGSQuadratic(t *testing.T) {
	obj := quadratic([]float64{1, 10, 100}, []float64{1, -2, 3})
	res, err := LBFGS(context.Background(), obj, []float64{0, 0, 0}, LBFGSParams{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged() {
		t.Fatalf("did not converge: %v", res.Status)
	}
	want := []float64{1, -2, 3}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-5 {
			t.Errorf("x[%d] = %v want %v", i, res.X[i], want[i])
		}
	}
	if res.Value > 1e-9 {
		t.Errorf("value = %v", res.Value)
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	for _, n := range []int{2, 10, 50} {
		obj := rosenbrock(n)
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = -1.2
		}
		res, err := LBFGS(context.Background(), obj, x0, LBFGSParams{MaxIterations: 500, GradTol: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		if res.Value > 1e-8 {
			t.Errorf("n=%d: value = %v after %d iters (%v)", n, res.Value, res.Iterations, res.Status)
		}
		for i := 0; i < n; i++ {
			if math.Abs(res.X[i]-1) > 1e-3 {
				t.Errorf("n=%d: x[%d] = %v want 1", n, i, res.X[i])
				break
			}
		}
	}
}

func TestLBFGSAlreadyConverged(t *testing.T) {
	obj := quadratic([]float64{1}, []float64{5})
	res, err := LBFGS(context.Background(), obj, []float64{5}, LBFGSParams{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != GradientConverged || res.Iterations != 0 {
		t.Errorf("status=%v iters=%d, want immediate convergence", res.Status, res.Iterations)
	}
}

func TestLBFGSDimMismatch(t *testing.T) {
	obj := quadratic([]float64{1, 1}, []float64{0, 0})
	if _, err := LBFGS(context.Background(), obj, []float64{0}, LBFGSParams{}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestLBFGSRejectsNaNStart(t *testing.T) {
	obj := FuncObjective{N: 1, F: func(x, grad []float64) float64 {
		grad[0] = 1
		return math.NaN()
	}}
	if _, err := LBFGS(context.Background(), obj, []float64{0}, LBFGSParams{}); err == nil {
		t.Error("expected error for NaN objective")
	}
}

func TestLBFGSMaxIterations(t *testing.T) {
	obj := rosenbrock(10)
	x0 := make([]float64, 10)
	res, err := LBFGS(context.Background(), obj, x0, LBFGSParams{MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 || res.Status != MaxIterationsReached {
		t.Errorf("iters=%d status=%v", res.Iterations, res.Status)
	}
}

func TestLBFGSCallbackStops(t *testing.T) {
	obj := rosenbrock(4)
	calls := 0
	res, err := LBFGS(context.Background(), obj, make([]float64, 4), LBFGSParams{
		Callback: func(info IterInfo) bool {
			calls++
			if info.Iter != calls {
				t.Errorf("callback iter %d on call %d", info.Iter, calls)
			}
			return calls < 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != CallbackStopped || calls != 2 {
		t.Errorf("status=%v calls=%d", res.Status, calls)
	}
}

func TestLBFGSMonotoneDecrease(t *testing.T) {
	obj := rosenbrock(8)
	x0 := make([]float64, 8)
	prev := math.Inf(1)
	_, err := LBFGS(context.Background(), obj, x0, LBFGSParams{
		MaxIterations: 50,
		Callback: func(info IterInfo) bool {
			if info.Value > prev+1e-12 {
				t.Errorf("iteration %d increased f: %v -> %v", info.Iter, prev, info.Value)
			}
			prev = info.Value
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLBFGSDoesNotModifyX0(t *testing.T) {
	obj := quadratic([]float64{1, 1}, []float64{3, 4})
	x0 := []float64{0, 0}
	if _, err := LBFGS(context.Background(), obj, x0, LBFGSParams{}); err != nil {
		t.Fatal(err)
	}
	if x0[0] != 0 || x0[1] != 0 {
		t.Errorf("x0 modified: %v", x0)
	}
}

func TestLBFGSBeatsGDOnIllConditioned(t *testing.T) {
	// With condition number 1e4, L-BFGS should need far fewer
	// evaluations than gradient descent for the same accuracy —
	// the reason mlpack (and hence the paper) uses it.
	c := []float64{1, 1e4}
	target := []float64{2, -1}
	budgetTol := 1e-8

	lb, err := LBFGS(context.Background(), quadratic(c, target), []float64{0, 0}, LBFGSParams{GradTol: budgetTol, MaxIterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	gd, err := GradientDescent(context.Background(), quadratic(c, target), []float64{0, 0}, GDParams{GradTol: budgetTol, MaxIterations: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !lb.Converged() {
		t.Fatalf("LBFGS did not converge: %v", lb.Status)
	}
	if gd.Evaluations <= lb.Evaluations {
		t.Errorf("GD evaluations (%d) <= LBFGS (%d); expected L-BFGS advantage", gd.Evaluations, lb.Evaluations)
	}
}

func TestGradientDescentQuadratic(t *testing.T) {
	obj := quadratic([]float64{2, 3}, []float64{-1, 4})
	res, err := GradientDescent(context.Background(), obj, []float64{0, 0}, GDParams{MaxIterations: 10000, GradTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged() {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.X[0]+1) > 1e-4 || math.Abs(res.X[1]-4) > 1e-4 {
		t.Errorf("x = %v", res.X)
	}
}

func TestGradientDescentDimMismatch(t *testing.T) {
	obj := quadratic([]float64{1}, []float64{0})
	if _, err := GradientDescent(context.Background(), obj, []float64{0, 0}, GDParams{}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestGradientDescentCallback(t *testing.T) {
	obj := quadratic([]float64{1}, []float64{10})
	res, err := GradientDescent(context.Background(), obj, []float64{0}, GDParams{
		Callback: func(info IterInfo) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != CallbackStopped {
		t.Errorf("status %v", res.Status)
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		GradientConverged:    "gradient converged",
		FunctionConverged:    "function converged",
		MaxIterationsReached: "max iterations reached",
		LineSearchFailed:     "line search failed",
		CallbackStopped:      "stopped by callback",
		Status(99):           "status(99)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q want %q", int(s), s.String(), want)
		}
	}
}

func TestWolfeSearchConditions(t *testing.T) {
	// φ(α) on f(x) = (x-3)² from x=0 along d=+1: minimum at α=3.
	obj := quadratic([]float64{1}, []float64{3})
	lf := &lineFunc{obj: obj, x: []float64{0}, d: []float64{1},
		xt: make([]float64, 1), gt: make([]float64, 1)}
	phi0 := 9.0
	dphi0 := -6.0
	p := defaultWolfe()
	alpha, phi, ok := wolfeSearch(lf, phi0, dphi0, 1, p)
	if !ok {
		t.Fatal("search failed")
	}
	// Check both strong Wolfe conditions explicitly.
	if phi > phi0+p.c1*alpha*dphi0 {
		t.Errorf("sufficient decrease violated: φ(%v)=%v", alpha, phi)
	}
	_, dphiA := lf.eval(alpha)
	if math.Abs(dphiA) > -p.c2*dphi0 {
		t.Errorf("curvature violated: |φ'(%v)|=%v > %v", alpha, math.Abs(dphiA), -p.c2*dphi0)
	}
}

func TestWolfeSearchRejectsAscent(t *testing.T) {
	obj := quadratic([]float64{1}, []float64{0})
	lf := &lineFunc{obj: obj, x: []float64{1}, d: []float64{1},
		xt: make([]float64, 1), gt: make([]float64, 1)}
	if _, _, ok := wolfeSearch(lf, 1, +2, 1, defaultWolfe()); ok {
		t.Error("accepted ascent direction")
	}
}

// TestLBFGSCancellation: cancelling mid-run returns the last completed
// iterate with Status Canceled and error ctx.Err().
func TestLBFGSCancellation(t *testing.T) {
	obj := rosenbrock(4)
	ctx, cancel := context.WithCancel(context.Background())
	res, err := LBFGS(ctx, obj, []float64{5, 5, 5, 5}, LBFGSParams{
		MaxIterations: 100,
		Callback: func(info IterInfo) bool {
			if info.Iter == 2 {
				cancel()
			}
			return true
		},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Status != Canceled {
		t.Errorf("status = %v, want Canceled", res.Status)
	}
	if res.Iterations != 2 {
		t.Errorf("iterations = %d, want 2 (cancelled after iteration 2)", res.Iterations)
	}

	// Pre-cancelled: no evaluation happens at all.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	evals := 0
	_, err = LBFGS(ctx2, FuncObjective{N: 1, F: func(x, g []float64) float64 {
		evals++
		return 0
	}}, []float64{1}, LBFGSParams{})
	if err != context.Canceled {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}
	if evals != 0 {
		t.Errorf("%d evaluations under a pre-cancelled context", evals)
	}
}

// TestGradientDescentCancellation mirrors the LBFGS contract.
func TestGradientDescentCancellation(t *testing.T) {
	obj := quadratic([]float64{1, 3}, []float64{2, -1})
	ctx, cancel := context.WithCancel(context.Background())
	res, err := GradientDescent(ctx, obj, []float64{3, -2}, GDParams{
		MaxIterations: 100,
		Callback: func(info IterInfo) bool {
			cancel()
			return true
		},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Status != Canceled {
		t.Errorf("status = %v, want Canceled", res.Status)
	}
}
