package optimize

import "math"

// wolfeParams configures the strong-Wolfe line search.
type wolfeParams struct {
	c1       float64 // sufficient-decrease constant (Armijo)
	c2       float64 // curvature constant
	maxIters int
	stepMax  float64
}

func defaultWolfe() wolfeParams {
	return wolfeParams{c1: 1e-4, c2: 0.9, maxIters: 30, stepMax: 1e8}
}

// lineFunc evaluates φ(α) = f(x + α·d) and φ'(α) = ∇f(x+α·d)ᵀd.
// It owns scratch buffers so repeated probes do not allocate.
type lineFunc struct {
	obj   Objective
	x, d  []float64
	xt    []float64
	gt    []float64
	evals int
	// lastAlpha is the step of the most recent eval; when it matches
	// the accepted step, xt and gt already hold the new point and
	// its gradient, sparing the optimizer a full extra data pass.
	lastAlpha float64
}

func (lf *lineFunc) eval(alpha float64) (phi, dphi float64) {
	for i := range lf.x {
		lf.xt[i] = lf.x[i] + alpha*lf.d[i]
	}
	phi = lf.obj.Eval(lf.xt, lf.gt)
	lf.evals++
	lf.lastAlpha = alpha
	for i := range lf.gt {
		dphi += lf.gt[i] * lf.d[i]
	}
	return phi, dphi
}

// wolfeSearch finds a step length satisfying the strong Wolfe
// conditions, following the bracket/zoom scheme of Nocedal & Wright
// (Algorithms 3.5 and 3.6). phi0 and dphi0 are φ(0) and φ'(0);
// dphi0 must be negative (descent direction). It returns the accepted
// step and φ(step), or ok=false when no acceptable step was found.
func wolfeSearch(lf *lineFunc, phi0, dphi0, alpha0 float64, p wolfeParams) (alpha, phi float64, ok bool) {
	if dphi0 >= 0 {
		return 0, phi0, false
	}
	alphaPrev, phiPrev := 0.0, phi0
	alpha = alpha0
	for i := 0; i < p.maxIters; i++ {
		phiA, dphiA := lf.eval(alpha)
		if phiA > phi0+p.c1*alpha*dphi0 || (i > 0 && phiA >= phiPrev) {
			return zoom(lf, alphaPrev, alpha, phiPrev, phi0, dphi0, p)
		}
		if math.Abs(dphiA) <= -p.c2*dphi0 {
			return alpha, phiA, true
		}
		if dphiA >= 0 {
			return zoom(lf, alpha, alphaPrev, phiA, phi0, dphi0, p)
		}
		alphaPrev, phiPrev = alpha, phiA
		alpha *= 2
		if alpha > p.stepMax {
			return alphaPrev, phiPrev, alphaPrev > 0
		}
	}
	return 0, phi0, false
}

// zoom narrows the bracket [lo, hi] (in the ordering sense of N&W:
// lo has the lower φ) until a Wolfe point is found.
func zoom(lf *lineFunc, lo, hi, phiLo, phi0, dphi0 float64, p wolfeParams) (alpha, phi float64, ok bool) {
	for i := 0; i < p.maxIters; i++ {
		alpha = 0.5 * (lo + hi) // bisection: robust and derivative-free
		//m3vet:allow floateq -- bisection fixed point: exact equality is the termination test
		if alpha == lo || alpha == hi {
			break
		}
		phiA, dphiA := lf.eval(alpha)
		if phiA > phi0+p.c1*alpha*dphi0 || phiA >= phiLo {
			hi = alpha
			continue
		}
		if math.Abs(dphiA) <= -p.c2*dphi0 {
			return alpha, phiA, true
		}
		if dphiA*(hi-lo) >= 0 {
			hi = lo
		}
		lo, phiLo = alpha, phiA
	}
	// Accept the best sufficient-decrease point even without the
	// curvature condition; L-BFGS will skip the pair update if the
	// curvature is unusable.
	if phiLo < phi0 && lo > 0 {
		return lo, phiLo, true
	}
	return 0, phi0, false
}
