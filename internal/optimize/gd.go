package optimize

import (
	"context"
	"fmt"
	"math"

	"m3/internal/blas"
)

// GDParams configures gradient descent, the baseline optimizer used
// by ablation benchmarks to quantify how much L-BFGS's curvature
// information is worth per data pass.
type GDParams struct {
	// StepSize is the initial step; the search backtracks from it.
	// Default 1.
	StepSize float64
	// MaxIterations bounds the outer iterations. Default 100.
	MaxIterations int
	// GradTol stops when ‖∇f‖₂ < GradTol. Default 1e-6.
	GradTol float64
	// Callback, when non-nil, runs after every iteration; returning
	// false stops the run.
	Callback func(IterInfo) bool
}

func (p GDParams) withDefaults() GDParams {
	if p.StepSize <= 0 {
		p.StepSize = 1
	}
	if p.MaxIterations <= 0 {
		p.MaxIterations = 100
	}
	if p.GradTol <= 0 {
		p.GradTol = 1e-6
	}
	return p
}

// GradientDescent minimizes obj with steepest descent and Armijo
// backtracking. ctx is checked at the top of every iteration (and may
// be nil); once cancelled, the last completed iterate is returned with
// Status Canceled and error ctx.Err().
func GradientDescent(ctx context.Context, obj Objective, x0 []float64, params GDParams) (Result, error) {
	p := params.withDefaults()
	n := obj.Dim()
	if len(x0) != n {
		return Result{}, fmt.Errorf("optimize: x0 has %d elements, objective wants %d", len(x0), n)
	}
	if err := ctxDone(ctx); err != nil {
		return Result{X: append([]float64(nil), x0...), Status: Canceled}, err
	}
	x := append([]float64(nil), x0...)
	grad := make([]float64, n)
	xt := make([]float64, n)
	gt := make([]float64, n)
	value := obj.Eval(x, grad)
	evals := 1

	for iter := 1; iter <= p.MaxIterations; iter++ {
		if err := ctxDone(ctx); err != nil {
			return Result{X: x, Value: value, GradNorm: blas.Nrm2(grad),
				Iterations: iter - 1, Evaluations: evals, Status: Canceled}, err
		}
		gnorm := blas.Nrm2(grad)
		if gnorm < p.GradTol {
			return Result{X: x, Value: value, GradNorm: gnorm,
				Iterations: iter - 1, Evaluations: evals, Status: GradientConverged}, nil
		}
		// Armijo backtracking along -grad.
		step := p.StepSize
		g2 := gnorm * gnorm
		accepted := false
		var newValue float64
		for probe := 0; probe < 40; probe++ {
			for i := range x {
				xt[i] = x[i] - step*grad[i]
			}
			newValue = obj.Eval(xt, gt)
			evals++
			if newValue <= value-1e-4*step*g2 && !math.IsNaN(newValue) {
				accepted = true
				break
			}
			step /= 2
		}
		if err := ctxDone(ctx); err != nil {
			return Result{X: x, Value: value, GradNorm: gnorm,
				Iterations: iter - 1, Evaluations: evals, Status: Canceled}, err
		}
		if !accepted {
			return Result{X: x, Value: value, GradNorm: gnorm,
				Iterations: iter - 1, Evaluations: evals, Status: LineSearchFailed}, nil
		}
		copy(x, xt)
		copy(grad, gt)
		value = newValue
		if p.Callback != nil && !p.Callback(IterInfo{
			Iter: iter, Value: value, GradNorm: blas.Nrm2(grad), Step: step, Evaluations: evals,
		}) {
			return Result{X: x, Value: value, GradNorm: blas.Nrm2(grad),
				Iterations: iter, Evaluations: evals, Status: CallbackStopped}, nil
		}
	}
	return Result{X: x, Value: value, GradNorm: blas.Nrm2(grad),
		Iterations: p.MaxIterations, Evaluations: evals, Status: MaxIterationsReached}, nil
}
