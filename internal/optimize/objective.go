// Package optimize implements the optimizers used by the paper's
// experiments — most importantly L-BFGS, the quasi-Newton method
// mlpack's logistic regression runs (the paper reports 10 iterations
// of L-BFGS per data point in Figure 1) — together with a gradient
// descent baseline and a strong-Wolfe line search shared by both.
package optimize

import "fmt"

// Objective is a smooth function with gradient. Eval must write the
// gradient at x into grad (same length as x) and return f(x).
//
// Objectives over M3 datasets stream the data matrix once per Eval;
// the optimizer never needs the data itself, which is what makes the
// whole stack storage-transparent.
type Objective interface {
	// Dim returns the parameter dimensionality.
	Dim() int
	// Eval returns f(x) and writes ∇f(x) into grad.
	Eval(x, grad []float64) float64
}

// FuncObjective adapts a plain function to the Objective interface.
type FuncObjective struct {
	N int
	F func(x, grad []float64) float64
}

// Dim returns the declared dimensionality.
func (f FuncObjective) Dim() int { return f.N }

// Eval invokes the wrapped function.
func (f FuncObjective) Eval(x, grad []float64) float64 { return f.F(x, grad) }

// Status describes how an optimization run ended.
type Status int

const (
	// GradientConverged: the gradient norm fell below GradTol.
	GradientConverged Status = iota
	// FunctionConverged: relative function decrease fell below FuncTol.
	FunctionConverged
	// MaxIterationsReached: the iteration budget ran out.
	MaxIterationsReached
	// LineSearchFailed: no acceptable step was found.
	LineSearchFailed
	// CallbackStopped: the iteration callback requested a stop.
	CallbackStopped
	// Canceled: the context was cancelled; the accompanying error is
	// ctx.Err() and the Result holds the last completed iterate.
	Canceled
)

func (s Status) String() string {
	switch s {
	case GradientConverged:
		return "gradient converged"
	case FunctionConverged:
		return "function converged"
	case MaxIterationsReached:
		return "max iterations reached"
	case LineSearchFailed:
		return "line search failed"
	case CallbackStopped:
		return "stopped by callback"
	case Canceled:
		return "context cancelled"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// IterInfo is passed to iteration callbacks.
type IterInfo struct {
	// Iter is the 1-based iteration number just completed.
	Iter int
	// Value is f(x) after the iteration.
	Value float64
	// GradNorm is ‖∇f(x)‖₂ after the iteration.
	GradNorm float64
	// Step is the accepted line-search step length.
	Step float64
	// Evaluations is the cumulative objective evaluation count.
	Evaluations int
}

// Result reports the outcome of an optimization run.
type Result struct {
	// X is the final parameter vector.
	X []float64
	// Value is f(X).
	Value float64
	// GradNorm is ‖∇f(X)‖₂.
	GradNorm float64
	// Iterations completed.
	Iterations int
	// Evaluations counts objective evaluations (function+gradient).
	Evaluations int
	// Status describes the stopping reason.
	Status Status
}

// Converged reports whether the run ended at a stationary point
// (gradient or function tolerance met).
func (r Result) Converged() bool {
	return r.Status == GradientConverged || r.Status == FunctionConverged
}
