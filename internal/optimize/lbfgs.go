package optimize

import (
	"context"
	"fmt"
	"math"

	"m3/internal/blas"
)

// ctxDone reports a cancelled context (nil means non-cancellable).
func ctxDone(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// LBFGSParams configures the L-BFGS optimizer. The zero value selects
// the defaults used by the paper's experiments (history 10, 10
// iterations are imposed by the caller through MaxIterations).
type LBFGSParams struct {
	// History is the number of (s, y) correction pairs kept (m in
	// the literature). Default 10.
	History int
	// MaxIterations bounds the outer iterations. Default 100.
	MaxIterations int
	// GradTol stops when ‖∇f‖₂ < GradTol. Default 1e-6.
	GradTol float64
	// FuncTol stops when the relative decrease of f between
	// iterations falls below FuncTol. Default 1e-12.
	FuncTol float64
	// Callback, when non-nil, runs after every iteration; returning
	// false stops the optimization with CallbackStopped.
	Callback func(IterInfo) bool
}

func (p LBFGSParams) withDefaults() LBFGSParams {
	if p.History <= 0 {
		p.History = 10
	}
	if p.MaxIterations <= 0 {
		p.MaxIterations = 100
	}
	if p.GradTol <= 0 {
		p.GradTol = 1e-6
	}
	if p.FuncTol <= 0 {
		p.FuncTol = 1e-12
	}
	return p
}

// LBFGS minimizes obj starting from x0 using the limited-memory BFGS
// two-loop recursion with a strong-Wolfe line search. x0 is not
// modified.
//
// ctx is checked before every objective evaluation and at the top of
// every iteration; once cancelled, LBFGS returns the last completed
// iterate with Status Canceled and error ctx.Err(). Objectives that
// scan through internal/exec additionally abort their own scans at
// block granularity, so cancellation takes effect within one data
// block, not one full pass. A nil ctx never cancels.
func LBFGS(ctx context.Context, obj Objective, x0 []float64, params LBFGSParams) (Result, error) {
	p := params.withDefaults()
	n := obj.Dim()
	if len(x0) != n {
		return Result{}, fmt.Errorf("optimize: x0 has %d elements, objective wants %d", len(x0), n)
	}
	if err := ctxDone(ctx); err != nil {
		return Result{X: append([]float64(nil), x0...), Status: Canceled}, err
	}

	x := append([]float64(nil), x0...)
	grad := make([]float64, n)
	value := obj.Eval(x, grad)
	evals := 1
	gnorm := blas.Nrm2(grad)

	if err := ctxDone(ctx); err != nil {
		return Result{X: x, Evaluations: evals, Status: Canceled}, err
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return Result{}, fmt.Errorf("optimize: objective is %v at x0", value)
	}
	if gnorm < p.GradTol {
		return Result{X: x, Value: value, GradNorm: gnorm, Evaluations: evals, Status: GradientConverged}, nil
	}

	// Ring buffers for the correction pairs.
	m := p.History
	sHist := make([][]float64, m)
	yHist := make([][]float64, m)
	rho := make([]float64, m)
	for i := range sHist {
		sHist[i] = make([]float64, n)
		yHist[i] = make([]float64, n)
	}
	stored := 0 // pairs currently valid
	next := 0   // ring position to overwrite

	dir := make([]float64, n)
	alphaBuf := make([]float64, m)
	gradPrev := make([]float64, n)
	xPrev := make([]float64, n)
	lf := &lineFunc{obj: obj, xt: make([]float64, n), gt: make([]float64, n)}
	wolfe := defaultWolfe()

	for iter := 1; iter <= p.MaxIterations; iter++ {
		if err := ctxDone(ctx); err != nil {
			return Result{X: x, Value: value, GradNorm: gnorm,
				Iterations: iter - 1, Evaluations: evals, Status: Canceled}, err
		}
		// Two-loop recursion: dir = -H·grad.
		copy(dir, grad)
		for k := 0; k < stored; k++ {
			idx := (next - 1 - k + 2*m) % m
			a := rho[idx] * blas.Dot(sHist[idx], dir)
			alphaBuf[idx] = a
			blas.Axpy(-a, yHist[idx], dir)
		}
		if stored > 0 {
			// Scale by γ = sᵀy / yᵀy of the newest pair.
			idx := (next - 1 + m) % m
			yy := blas.Dot(yHist[idx], yHist[idx])
			if yy > 0 {
				blas.Scal(blas.Dot(sHist[idx], yHist[idx])/yy, dir)
			}
		}
		for k := stored - 1; k >= 0; k-- {
			idx := (next - 1 - k + 2*m) % m
			b := rho[idx] * blas.Dot(yHist[idx], dir)
			blas.Axpy(alphaBuf[idx]-b, sHist[idx], dir)
		}
		blas.Scal(-1, dir)

		dphi0 := blas.Dot(grad, dir)
		if dphi0 >= 0 {
			// Hessian approximation lost positive-definiteness:
			// restart with steepest descent.
			copy(dir, grad)
			blas.Scal(-1, dir)
			dphi0 = -blas.Dot(grad, grad)
			stored, next = 0, 0
		}

		// Initial step: 1 once we have curvature history, else a
		// conservative gradient-scaled guess.
		alpha0 := 1.0
		if stored == 0 {
			if g := blas.Nrm2(dir); g > 0 {
				alpha0 = math.Min(1, 1/g)
			}
		}

		lf.x, lf.d = x, dir
		step, newValue, ok := wolfeSearch(lf, value, dphi0, alpha0, wolfe)
		evals += lf.evals
		lf.evals = 0
		if err := ctxDone(ctx); err != nil {
			// A cancelled context makes objective scans return early
			// with garbage partials; discard whatever the line search
			// produced and report the last completed iterate.
			return Result{X: x, Value: value, GradNorm: gnorm,
				Iterations: iter - 1, Evaluations: evals, Status: Canceled}, err
		}
		if !ok {
			return Result{X: x, Value: value, GradNorm: gnorm,
				Iterations: iter - 1, Evaluations: evals, Status: LineSearchFailed}, nil
		}

		copy(xPrev, x)
		copy(gradPrev, grad)
		blas.Axpy(step, dir, x)
		//m3vet:allow floateq -- cache-hit check: the values match only by assignment
		if lf.lastAlpha == step {
			// The line search's final evaluation was at the accepted
			// step, so its gradient is the gradient at x — reuse it
			// instead of paying another full data pass.
			copy(grad, lf.gt)
		} else {
			obj.Eval(x, grad)
			evals++
		}
		gnorm = blas.Nrm2(grad)

		// Store the correction pair if curvature is positive.
		s := sHist[next]
		y := yHist[next]
		for i := range s {
			s[i] = x[i] - xPrev[i]
			y[i] = grad[i] - gradPrev[i]
		}
		if sy := blas.Dot(s, y); sy > 1e-10*blas.Nrm2(s)*blas.Nrm2(y) {
			rho[next] = 1 / sy
			next = (next + 1) % m
			if stored < m {
				stored++
			}
		}

		rel := math.Abs(value-newValue) / math.Max(1, math.Abs(value))
		value = newValue

		if p.Callback != nil && !p.Callback(IterInfo{
			Iter: iter, Value: value, GradNorm: gnorm, Step: step, Evaluations: evals,
		}) {
			return Result{X: x, Value: value, GradNorm: gnorm,
				Iterations: iter, Evaluations: evals, Status: CallbackStopped}, nil
		}
		if gnorm < p.GradTol {
			return Result{X: x, Value: value, GradNorm: gnorm,
				Iterations: iter, Evaluations: evals, Status: GradientConverged}, nil
		}
		if rel < p.FuncTol {
			return Result{X: x, Value: value, GradNorm: gnorm,
				Iterations: iter, Evaluations: evals, Status: FunctionConverged}, nil
		}
	}
	return Result{X: x, Value: value, GradNorm: gnorm,
		Iterations: p.MaxIterations, Evaluations: evals, Status: MaxIterationsReached}, nil
}
