package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"m3/internal/blas"
	"m3/internal/exec"
	"m3/internal/mat"
	"m3/internal/ml/bayes"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/linreg"
	"m3/internal/ml/logreg"
	"m3/internal/ml/modelio"
	"m3/internal/ml/pca"
	"m3/internal/ml/preprocess"
	"m3/internal/obs"
)

// Options parameterizes a Coordinator.
type Options struct {
	// DialTimeout bounds each dial attempt (default 5s).
	DialTimeout time.Duration
	// DialRetries is how many times a transient dial failure (worker
	// still binding) is retried with exponential backoff (default 5).
	DialRetries int
	// CallTimeout bounds each RPC round trip (default 2m — a round
	// includes a full shard scan).
	CallTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.DialRetries <= 0 {
		o.DialRetries = 5
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 2 * time.Minute
	}
	return o
}

// Stats summarizes a coordinator's wire activity (monotonic since
// Dial; snapshot before and after a fit to cost it).
type Stats struct {
	// Rounds counts broadcast rounds (one parallel op across all
	// active shards).
	Rounds int64
	// BytesSent / BytesReceived are wire totals from the
	// coordinator's side.
	BytesSent, BytesReceived int64
	// StragglerWait accumulates per-round max-minus-min worker
	// latency.
	StragglerWait time.Duration
}

// Sub returns s - earlier, for per-fit deltas.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{
		Rounds:        s.Rounds - earlier.Rounds,
		BytesSent:     s.BytesSent - earlier.BytesSent,
		BytesReceived: s.BytesReceived - earlier.BytesReceived,
		StragglerWait: s.StragglerWait - earlier.StragglerWait,
	}
}

// workerConn is one dialed worker.
type workerConn struct {
	addr   string
	conn   net.Conn
	seq    uint64
	lo, hi int
	// mu serializes calls on the connection (the protocol is strictly
	// request/response).
	mu sync.Mutex
}

// Coordinator drives distributed fits over a set of dialed workers.
// It is not safe for concurrent Fit calls.
type Coordinator struct {
	opts    Options
	workers []*workerConn
	// active are the workers holding shards of the open dataset, in
	// ascending shard order — the refold order.
	active []*workerConn

	path       string
	rows, cols int
	hasLabels  bool
	groupRows  int
	// curCols tracks the view width through pipeline stages.
	curCols int

	rounds, bytesSent, bytesRecv atomic.Int64
	stragglerNanos               atomic.Int64
	// stall accumulates workers' simulated paging stall seconds.
	stall float64
}

// DialWorkers connects to every addr (retrying transient failures)
// and returns a coordinator over them.
func DialWorkers(ctx context.Context, addrs []string, opts Options) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, errors.New("dist: no worker addresses")
	}
	o := opts.withDefaults()
	c := &Coordinator{opts: o}
	for _, addr := range addrs {
		conn, err := dialRetry(ctx, addr, o.DialTimeout, o.DialRetries)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.workers = append(c.workers, &workerConn{addr: addr, conn: conn})
	}
	return c, nil
}

// Close drops every worker connection. Workers tear down their shard
// state when the connection closes.
func (c *Coordinator) Close() error {
	var errs []error
	for _, w := range c.workers {
		if w.conn != nil {
			errs = append(errs, w.conn.Close())
			w.conn = nil
		}
	}
	c.workers, c.active = nil, nil
	return errors.Join(errs...)
}

// Workers returns the dialed worker count.
func (c *Coordinator) Workers() int { return len(c.workers) }

// Shards returns the active shard count of the open dataset.
func (c *Coordinator) Shards() int { return len(c.active) }

// Stats returns cumulative wire statistics.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Rounds:        c.rounds.Load(),
		BytesSent:     c.bytesSent.Load(),
		BytesReceived: c.bytesRecv.Load(),
		StragglerWait: time.Duration(c.stragglerNanos.Load()),
	}
}

// Stall returns accumulated simulated paging stall seconds reported
// by workers (zero on real backends).
func (c *Coordinator) Stall() float64 { return c.stall }

// call performs one serialized RPC on w. ctx cancellation pokes the
// connection deadline so a mid-round cancel unblocks promptly.
func (c *Coordinator) call(ctx context.Context, w *workerConn, op string, reqBody []byte, resp any) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.conn == nil {
		return fmt.Errorf("dist: worker %s: connection closed", w.addr)
	}
	w.seq++
	req := request{Seq: w.seq, Op: op, Body: reqBody}
	w.conn.SetDeadline(time.Now().Add(c.opts.CallTimeout))
	stop := context.AfterFunc(ctx, func() {
		w.conn.SetDeadline(time.Unix(1, 0))
	})
	defer stop()
	sent, err := writeFrame(w.conn, &req)
	c.bytesSent.Add(int64(sent))
	bytesSentTotal.With(op).Add(float64(sent))
	if err != nil {
		return c.rpcErr(ctx, w, op, err)
	}
	var envelope response
	recvd, err := readFrame(w.conn, &envelope)
	c.bytesRecv.Add(int64(recvd))
	bytesRecvTotal.With(op).Add(float64(recvd))
	if err != nil {
		return c.rpcErr(ctx, w, op, err)
	}
	if envelope.Seq != req.Seq {
		return fmt.Errorf("dist: worker %s: %s: reply %d for request %d", w.addr, op, envelope.Seq, req.Seq)
	}
	if envelope.Err != "" {
		return fmt.Errorf("dist: worker %s: %s", w.addr, envelope.Err)
	}
	if resp == nil {
		return nil
	}
	return decodeBody(envelope.Body, resp)
}

// rpcErr attributes a transport failure: a canceled context wins over
// the I/O error it induced.
func (c *Coordinator) rpcErr(ctx context.Context, w *workerConn, op string, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return fmt.Errorf("dist: worker %s: %s: %w", w.addr, op, err)
}

// broadcast sends op with the same request to every active worker in
// parallel and returns the responses in shard order — one
// bulk-synchronous round.
func broadcast[Resp any](ctx context.Context, c *Coordinator, op string, req any) ([]*Resp, error) {
	body, err := encodeBody(req)
	if err != nil {
		return nil, err
	}
	sp := obs.StartSpan("dist", "round "+op)
	defer sp.End()
	n := len(c.active)
	out := make([]*Resp, n)
	errs := make([]error, n)
	durs := make([]time.Duration, n)
	var wg sync.WaitGroup
	for i, w := range c.active {
		wg.Add(1)
		go func(i int, w *workerConn) {
			defer wg.Done()
			start := time.Now()
			var r Resp
			if err := c.call(ctx, w, op, body, &r); err != nil {
				errs[i] = err
				return
			}
			out[i] = &r
			durs[i] = time.Since(start)
		}(i, w)
	}
	wg.Wait()
	c.rounds.Add(1)
	roundsTotal.With(op).Inc()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	minD, maxD := durs[0], durs[0]
	for _, d := range durs[1:] {
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	wait := maxD - minD
	c.stragglerNanos.Add(int64(wait))
	stragglerWaitSeconds.With(op).Add(wait.Seconds())
	sp.SetArg("workers", n).SetArg("straggler_wait", wait.String())
	return out, nil
}

// Open shards path across the dialed workers: it probes the file's
// shape, plans merge-group-aligned contiguous shards, and has each
// active worker open its row window. Reusable across Fit calls.
func (c *Coordinator) Open(ctx context.Context, path string) error {
	if len(c.workers) == 0 {
		return errors.New("dist: no workers")
	}
	body, err := encodeBody(&statReq{Path: path})
	if err != nil {
		return err
	}
	var st statResp
	if err := c.call(ctx, c.workers[0], "stat", body, &st); err != nil {
		return err
	}
	shards, err := PlanShards(st.Rows, len(c.workers))
	if err != nil {
		return err
	}
	c.path = path
	c.rows, c.cols, c.hasLabels = st.Rows, st.Cols, st.HasLabels
	c.curCols = st.Cols
	c.groupRows = exec.GroupRows(st.Rows)
	c.active = c.workers[:len(shards)]

	var wg sync.WaitGroup
	errs := make([]error, len(shards))
	for i, shard := range shards {
		w := c.active[i]
		w.lo, w.hi = shard.Lo, shard.Hi
		wg.Add(1)
		go func(i int, w *workerConn, shard Range) {
			defer wg.Done()
			body, err := encodeBody(&openReq{Path: path, Lo: shard.Lo, Hi: shard.Hi, GroupRows: c.groupRows})
			if err != nil {
				errs[i] = err
				return
			}
			var resp openResp
			errs[i] = c.call(ctx, w, "open", body, &resp)
		}(i, w, shard)
	}
	wg.Wait()
	c.rounds.Add(1)
	roundsTotal.With("open").Inc()
	return errors.Join(errs...)
}

// Fit opens path (sharded across the workers) and runs the fit spec
// describes, returning the inner model (*logreg.Model,
// *kmeans.Result, *modelio.Pipeline, ...) — the same values a local
// fit produces, bit for bit.
func (c *Coordinator) Fit(ctx context.Context, path string, spec Spec) (any, error) {
	sp := obs.StartSpan("dist", "fit "+spec.Algo)
	defer sp.End()
	if err := c.Open(ctx, path); err != nil {
		return nil, err
	}
	if _, err := broadcast[resetResp](ctx, c, "reset", &resetReq{}); err != nil {
		return nil, err
	}
	return c.fitSpec(ctx, spec)
}

// fitSpec dispatches one estimator or pipeline fit on the open,
// already-reset shards.
func (c *Coordinator) fitSpec(ctx context.Context, spec Spec) (any, error) {
	switch spec.Algo {
	case "logistic":
		return c.fitLogistic(ctx, spec)
	case "softmax":
		return c.fitSoftmax(ctx, spec)
	case "linear":
		return c.fitLinear(ctx, spec)
	case "linear-exact":
		return c.fitLinearExact(ctx, spec)
	case "bayes":
		return c.fitBayes(ctx, spec)
	case "kmeans":
		return c.fitKMeans(ctx, spec)
	case "pca":
		return c.fitPCA(ctx, spec)
	case "standard-scaler":
		return c.fitStandard(ctx)
	case "minmax-scaler":
		return c.fitMinMax(ctx)
	case "pipeline":
		return c.fitPipeline(ctx, spec)
	case "sgd":
		return nil, errors.New("dist: SGD is a sequential single-pass trainer; its updates depend on row order across the whole dataset and cannot be sharded — train locally instead")
	}
	return nil, fmt.Errorf("dist: unknown algorithm %q", spec.Algo)
}

// fitLogistic drives L-BFGS through the shared TrainWith driver; each
// objective evaluation is one broadcast round whose group partials
// refold into exactly the local scan's fold.
func (c *Coordinator) fitLogistic(ctx context.Context, spec Spec) (*logreg.Model, error) {
	d := c.curCols
	o := logreg.ResolveOptions(logreg.Options{
		Lambda:        spec.Lambda,
		NoIntercept:   spec.NoIntercept,
		MaxIterations: spec.MaxIterations,
		GradTol:       spec.GradTol,
	})
	intercept := !o.NoIntercept
	obj := &logreg.RemoteObjective{
		N: c.rows, D: d, Lambda: o.Lambda, Intercept: intercept,
		Reduce: func(params []float64) (*logreg.GradPartial, error) {
			resps, err := broadcast[gradResp](ctx, c, "logreg/grad",
				&gradReq{Params: params, Intercept: intercept, Binarize: spec.Binarize, Positive: spec.Positive})
			if err != nil {
				return nil, err
			}
			total := logreg.NewGradPartial(d)
			for _, r := range resps {
				c.stall += r.Stall
				for _, g := range r.Groups {
					logreg.MergeGrad(total, g.State)
				}
			}
			return total, nil
		},
	}
	m, err := logreg.TrainWith(ctx, obj, d, o)
	if obj.Err != nil {
		return nil, obj.Err
	}
	return m, err
}

// fitSoftmax mirrors fitLogistic for the multiclass objective.
func (c *Coordinator) fitSoftmax(ctx context.Context, spec Spec) (*logreg.SoftmaxModel, error) {
	d, k := c.curCols, spec.Classes
	o := logreg.ResolveOptions(logreg.Options{
		Lambda:        spec.Lambda,
		NoIntercept:   spec.NoIntercept,
		MaxIterations: spec.MaxIterations,
		GradTol:       spec.GradTol,
	})
	intercept := !o.NoIntercept
	obj := &logreg.RemoteSoftmaxObjective{
		N: c.rows, D: d, Classes: k, Lambda: o.Lambda, Intercept: intercept,
		Reduce: func(params []float64) (*logreg.SoftmaxPartial, error) {
			resps, err := broadcast[softmaxResp](ctx, c, "softmax/grad",
				&softmaxReq{Params: params, Classes: k, Intercept: intercept})
			if err != nil {
				return nil, err
			}
			total := logreg.NewSoftmaxPartial(len(params), k)
			for _, r := range resps {
				c.stall += r.Stall
				for _, g := range r.Groups {
					logreg.MergeSoftmax(total, g.State)
				}
			}
			return total, nil
		},
	}
	m, err := logreg.TrainSoftmaxWith(ctx, obj, d, k, o)
	if obj.Err != nil {
		return nil, obj.Err
	}
	return m, err
}

// fitLinear drives the iterative least-squares path.
func (c *Coordinator) fitLinear(ctx context.Context, spec Spec) (*linreg.Model, error) {
	d := c.curCols
	o := linreg.ResolveOptions(linreg.Options{
		Lambda:        spec.Lambda,
		NoIntercept:   spec.NoIntercept,
		MaxIterations: spec.MaxIterations,
		GradTol:       spec.GradTol,
	})
	intercept := !o.NoIntercept
	obj := &linreg.RemoteObjective{
		N: c.rows, D: d, Lambda: o.Lambda, Intercept: intercept,
		Reduce: func(params []float64) (*linreg.LsqPartial, error) {
			resps, err := broadcast[lsqResp](ctx, c, "linreg/lsq",
				&lsqReq{Params: params, Intercept: intercept})
			if err != nil {
				return nil, err
			}
			total := linreg.NewLsqPartial(d)
			for _, r := range resps {
				c.stall += r.Stall
				for _, g := range r.Groups {
					linreg.MergeLsq(total, g.State)
				}
			}
			return total, nil
		},
	}
	m, err := linreg.TrainWith(ctx, obj, d, o)
	if obj.Err != nil {
		return nil, obj.Err
	}
	return m, err
}

// fitLinearExact closes the ridge normal equations from one Gram
// round.
func (c *Coordinator) fitLinearExact(ctx context.Context, spec Spec) (*linreg.Model, error) {
	d := c.curCols
	o := linreg.ResolveOptions(linreg.Options{Lambda: spec.Lambda, NoIntercept: spec.NoIntercept})
	resps, err := broadcast[gramResp](ctx, c, "linreg/gram", &gramReq{NoIntercept: o.NoIntercept})
	if err != nil {
		return nil, err
	}
	total := linreg.NewGramPartial(d, o.NoIntercept)
	for _, r := range resps {
		c.stall += r.Stall
		for _, g := range r.Groups {
			linreg.MergeGram(total, g.State)
		}
	}
	return linreg.ModelFromGram(total, c.rows, d, o.Lambda, o.NoIntercept)
}

// fitBayes folds one counting round into the closed-form model.
func (c *Coordinator) fitBayes(ctx context.Context, spec Spec) (*bayes.Model, error) {
	d, k := c.curCols, spec.Classes
	resps, err := broadcast[bayesResp](ctx, c, "bayes/counts", &bayesReq{Classes: k})
	if err != nil {
		return nil, err
	}
	total := bayes.NewCountPartial(k, d)
	for _, r := range resps {
		c.stall += r.Stall
		for _, g := range r.Groups {
			bayes.MergeCounts(total, g.State)
		}
	}
	return bayes.ModelFromCounts(total, c.rows, k, d, bayes.DefaultVarSmoothing(spec.VarSmoothing))
}

// fitStandard folds one moments round into a standard scaler.
func (c *Coordinator) fitStandard(ctx context.Context) (*preprocess.StandardScaler, error) {
	resps, err := broadcast[momentsResp](ctx, c, "moments", &momentsReq{})
	if err != nil {
		return nil, err
	}
	total := preprocess.NewMoments(c.curCols)
	for _, r := range resps {
		c.stall += r.Stall
		for _, g := range r.Groups {
			preprocess.MergeMoments(total, g.State)
		}
	}
	return preprocess.StandardFromMoments(total), nil
}

// fitMinMax folds one extrema round into a min-max scaler.
func (c *Coordinator) fitMinMax(ctx context.Context) (*preprocess.MinMaxScaler, error) {
	resps, err := broadcast[extremaResp](ctx, c, "extrema", &extremaReq{})
	if err != nil {
		return nil, err
	}
	total := preprocess.NewExtrema(c.curCols)
	for _, r := range resps {
		c.stall += r.Stall
		for _, g := range r.Groups {
			preprocess.MergeExtrema(total, g.State)
		}
	}
	return preprocess.MinMaxFromExtrema(total), nil
}

// fitPCA runs the two distributed data passes (column sums, scatter
// at the mean) and finishes the decomposition locally — the exact
// split pca.Fit performs.
func (c *Coordinator) fitPCA(ctx context.Context, spec Spec) (*pca.Result, error) {
	n, d := c.rows, c.curCols
	o, err := pca.ResolveOptions(pca.Options{
		Components:    spec.Components,
		MaxIterations: spec.MaxIterations,
		Tol:           spec.Tol,
		Seed:          spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	if o.Components > d {
		return nil, fmt.Errorf("pca: %d components exceed %d features", o.Components, d)
	}
	if n < 2 {
		return nil, fmt.Errorf("pca: need >= 2 rows, got %d", n)
	}
	meanResps, err := broadcast[pcaMeanResp](ctx, c, "pca/mean", &pcaMeanReq{})
	if err != nil {
		return nil, err
	}
	mean := make([]float64, d)
	for _, r := range meanResps {
		c.stall += r.Stall
		for _, g := range r.Groups {
			pca.MergeSum(mean, g.State)
		}
	}
	blas.Scal(1/float64(n), mean)
	covResps, err := broadcast[pcaCovResp](ctx, c, "pca/cov", &pcaCovReq{Mean: mean})
	if err != nil {
		return nil, err
	}
	total := pca.NewCovPartial(d)
	for _, r := range covResps {
		c.stall += r.Stall
		for _, g := range r.Groups {
			pca.MergeCov(total, g.State)
		}
	}
	return pca.FinishFromCov(ctx, total.Part, mean, n, o)
}

// fitKMeans runs the shared Lloyd driver over the sharded data plane:
// every data-touching step is a broadcast round (or a routed
// single-shard call), every bit of model math happens in RunPlane.
func (c *Coordinator) fitKMeans(ctx context.Context, spec Spec) (*kmeans.Result, error) {
	opts := kmeans.Options{
		K:                spec.K,
		MaxIterations:    spec.MaxIterations,
		Tol:              spec.Tol,
		Seed:             spec.Seed,
		RandomInit:       spec.RandomInit,
		RunAllIterations: spec.RunAllIterations,
	}
	if spec.InitCentroids != nil {
		d := c.curCols
		if spec.K < 1 || len(spec.InitCentroids) != spec.K*d {
			return nil, fmt.Errorf("dist: InitCentroids has %d values, want %dx%d", len(spec.InitCentroids), spec.K, d)
		}
		init := mat.NewDense(spec.K, d)
		for i := 0; i < spec.K; i++ {
			init.SetRow(i, spec.InitCentroids[i*d:(i+1)*d])
		}
		opts.InitCentroids = init
	}
	res, err := kmeans.RunPlane(ctx, &distPlane{c: c}, opts)
	if err != nil {
		return nil, err
	}
	c.stall += res.Stall
	return res, nil
}

// fitPipeline fits each transformer stage distributively, pushes the
// fitted stage to every worker (extending their fused views), then
// fits the final estimator — materializing the transformed shards
// once first for multi-epoch finals, exactly like the local pipeline.
func (c *Coordinator) fitPipeline(ctx context.Context, spec Spec) (*modelio.Pipeline, error) {
	if spec.Final == nil {
		return nil, errors.New("dist: pipeline has no final estimator")
	}
	p := &modelio.Pipeline{}
	for i, stage := range spec.Stages {
		var (
			inner any
			req   stageReq
			err   error
		)
		switch stage.Algo {
		case "standard-scaler":
			var s *preprocess.StandardScaler
			if s, err = c.fitStandard(ctx); err == nil {
				inner = s
				req = stageReq{Kind: "standard", Mean: s.Mean, Std: s.Std}
			}
		case "minmax-scaler":
			var s *preprocess.MinMaxScaler
			if s, err = c.fitMinMax(ctx); err == nil {
				inner = s
				req = stageReq{Kind: "minmax", Min: s.Min, Range: s.Range}
			}
		case "pca":
			var r *pca.Result
			if r, err = c.fitPCA(ctx, stage); err == nil {
				inner = r
				k, d := r.Components.Dims()
				flat := make([]float64, 0, k*d)
				for row := 0; row < k; row++ {
					flat = append(flat, r.Components.RawRow(row)...)
				}
				req = stageReq{Kind: "pca", Components: flat, PCAMean: r.Mean, K: k, D: d}
			}
		default:
			err = fmt.Errorf("dist: unsupported pipeline stage %q", stage.Algo)
		}
		if err != nil {
			return nil, fmt.Errorf("dist: pipeline stage %d: %w", i, err)
		}
		resps, err := broadcast[stageResp](ctx, c, "stage", &req)
		if err != nil {
			return nil, fmt.Errorf("dist: pipeline stage %d: %w", i, err)
		}
		c.curCols = resps[0].OutCols
		p.Stages = append(p.Stages, inner)
	}

	// Multi-epoch finals re-scan the transformed data every
	// iteration; materialize the shard caches once, like the local
	// pipeline's single fused materialization pass. Bounded-pass
	// finals (bayes, exact linear, pca) stream off the fused views.
	if len(spec.Stages) > 0 && multiEpoch(spec.Final.Algo) {
		resps, err := broadcast[materializeResp](ctx, c, "materialize", &materializeReq{})
		if err != nil {
			return nil, err
		}
		for _, r := range resps {
			c.stall += r.Stall
		}
	}
	final, err := c.fitSpec(ctx, *spec.Final)
	if err != nil {
		return nil, err
	}
	p.Stages = append(p.Stages, final)
	return p, nil
}

// multiEpoch reports whether an algorithm re-scans the data across
// iterations — the complement of the root package's streamingFit
// markers.
func multiEpoch(algo string) bool {
	switch algo {
	case "bayes", "linear-exact", "pca", "standard-scaler", "minmax-scaler":
		return false
	}
	return true
}

// distPlane is the sharded kmeans.DataPlane: assignment and seeding
// passes are broadcast rounds whose group partials refold in global
// order; the sequential k-means++ prefix walk chains shard to shard
// carrying the running accumulator; row fetches route to the owning
// shard.
type distPlane struct {
	c *Coordinator
}

// Dims implements kmeans.DataPlane.
func (p *distPlane) Dims() (int, int) { return p.c.rows, p.c.curCols }

// AssignPass implements kmeans.DataPlane.
func (p *distPlane) AssignPass(ctx context.Context, centroids []float64, k int) (*kmeans.AssignPartial, float64, error) {
	resps, err := broadcast[assignResp](ctx, p.c, "kmeans/assign", &assignReq{Centroids: centroids, K: k})
	if err != nil {
		return nil, 0, err
	}
	total := kmeans.NewAssignPartial(k, p.c.curCols)
	var stall float64
	for _, r := range resps {
		stall += r.Stall
		for _, g := range r.Groups {
			kmeans.MergeAssign(total, g.State)
		}
	}
	return total, stall, nil
}

// SeedPass implements kmeans.DataPlane. The mass folds from zero in
// global group order — the same fold the local plane's reduction
// performs.
func (p *distPlane) SeedPass(ctx context.Context, prev []float64) (float64, float64, error) {
	resps, err := broadcast[seedResp](ctx, p.c, "kmeans/seed", &seedReq{Prev: prev})
	if err != nil {
		return 0, 0, err
	}
	var mass, stall float64
	for _, r := range resps {
		stall += r.Stall
		for _, g := range r.Groups {
			mass += g.Mass
		}
	}
	return mass, stall, nil
}

// SamplePrefix implements kmeans.DataPlane: shards are walked in
// order, each resuming the running prefix sum where the previous
// left off — the distributed transcription of the flat sequential
// walk (same additions, same comparisons).
func (p *distPlane) SamplePrefix(ctx context.Context, target float64) (int, error) {
	acc := 0.0
	for _, w := range p.c.active {
		body, err := encodeBody(&sampleReq{Acc: acc, Target: target})
		if err != nil {
			return 0, err
		}
		var resp sampleResp
		if err := p.c.call(ctx, w, "kmeans/sample", body, &resp); err != nil {
			return 0, err
		}
		if resp.Found {
			return w.lo + resp.Idx, nil
		}
		acc = resp.Acc
	}
	// Mass fell short of target (floating-point shortfall): the local
	// walk falls back to the last row.
	return p.c.rows - 1, nil
}

// FetchRow implements kmeans.DataPlane, routing to the owning shard.
func (p *distPlane) FetchRow(ctx context.Context, i int, dst []float64) (float64, error) {
	for _, w := range p.c.active {
		if i >= w.lo && i < w.hi {
			body, err := encodeBody(&rowReq{I: i - w.lo})
			if err != nil {
				return 0, err
			}
			var resp rowResp
			if err := p.c.call(ctx, w, "row", body, &resp); err != nil {
				return 0, err
			}
			copy(dst, resp.Row)
			return resp.Stall, nil
		}
	}
	return 0, fmt.Errorf("dist: row %d outside every shard", i)
}

// GatherAssignments implements kmeans.DataPlane, concatenating shard
// assignments in shard order.
func (p *distPlane) GatherAssignments(ctx context.Context) ([]int, error) {
	resps, err := broadcast[gatherResp](ctx, p.c, "kmeans/gather", &gatherReq{})
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, p.c.rows)
	for _, r := range resps {
		out = append(out, r.Assignments...)
	}
	return out, nil
}
