package dist

import "m3/internal/obs"

// Cluster-level metrics, registered on the obs default registry so
// /metrics on any process embedding a coordinator or worker exports
// them alongside the engine's fit metrics.
var (
	// roundsTotal counts coordinator broadcast rounds by op.
	roundsTotal = obs.NewCounterVec("m3_dist_rounds_total",
		"Coordinator broadcast rounds, by op.", "op")
	// bytesSentTotal / bytesRecvTotal count wire bytes from the
	// coordinator's side, by op — the shipped-state cost of each
	// distributed pass.
	bytesSentTotal = obs.NewCounterVec("m3_dist_bytes_sent_total",
		"Bytes sent by the coordinator, by op.", "op")
	bytesRecvTotal = obs.NewCounterVec("m3_dist_bytes_received_total",
		"Bytes received by the coordinator, by op.", "op")
	// stragglerWaitSeconds accumulates, per round, how long the
	// fastest worker waited for the slowest — the synchronization tax
	// of the bulk-synchronous design.
	stragglerWaitSeconds = obs.NewCounterVec("m3_dist_straggler_wait_seconds_total",
		"Per-round wait of the fastest worker on the slowest, by op.", "op")
	// workerOpsTotal counts ops served by this process's workers.
	workerOpsTotal = obs.NewCounterVec("m3_dist_worker_ops_total",
		"Ops served by workers in this process, by op.", "op")
)

func init() {
	r := obs.Default()
	r.Register(roundsTotal.Collect)
	r.Register(bytesSentTotal.Collect)
	r.Register(bytesRecvTotal.Collect)
	r.Register(stragglerWaitSeconds.Collect)
	r.Register(workerOpsTotal.Collect)
}
