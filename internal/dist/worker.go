package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"

	"m3/internal/core"
	"m3/internal/mat"
	"m3/internal/ml/bayes"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/linreg"
	"m3/internal/ml/logreg"
	"m3/internal/ml/modelio"
	"m3/internal/ml/pca"
	"m3/internal/ml/preprocess"
	"m3/internal/obs"
)

// WorkerConfig parameterizes a worker node.
type WorkerConfig struct {
	// Mode selects the storage backend for the shard (Auto maps when
	// the whole file outgrows the budget — exactly like a local fit).
	Mode core.Mode
	// MemoryBudget is the Auto-mode heap budget (0: engine default).
	MemoryBudget int64
	// Workers sizes the shard scans' worker pool (<= 0: NumCPU).
	// Results are bit-identical for every value.
	Workers int
}

// Worker serves shard scans for one or more coordinators. Each
// accepted connection gets its own engine and shard state, torn down
// when the connection closes, so a dropped coordinator never leaks
// mappings or scratch.
type Worker struct {
	cfg WorkerConfig

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup
}

// NewWorker returns a worker with the given storage configuration.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Serve accepts coordinator connections on ln until Shutdown (or a
// listener error). It blocks; run it in a goroutine when embedding.
func (w *Worker) Serve(ln net.Listener) error {
	w.mu.Lock()
	if w.draining {
		w.mu.Unlock()
		return errors.New("dist: worker is shut down")
	}
	w.ln = ln
	w.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			w.mu.Lock()
			draining := w.draining
			w.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		w.mu.Lock()
		if w.draining {
			w.mu.Unlock()
			conn.Close()
			continue
		}
		w.conns[conn] = struct{}{}
		w.wg.Add(1)
		w.mu.Unlock()
		go func() {
			defer w.wg.Done()
			w.handleConn(conn)
			w.mu.Lock()
			delete(w.conns, conn)
			w.mu.Unlock()
		}()
	}
}

// Shutdown stops accepting, waits for in-flight requests to drain
// (bounded by ctx), then closes remaining connections. SIGTERM
// handlers call this for a clean drain.
func (w *Worker) Shutdown(ctx context.Context) error {
	w.mu.Lock()
	w.draining = true
	ln := w.ln
	w.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		w.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		w.mu.Lock()
		//m3vet:allow maporder -- shutdown sweep; close order is irrelevant
		for c := range w.conns {
			c.Close()
		}
		w.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// handleConn serves one coordinator connection: strictly serial
// request/response, with a per-connection session torn down on exit.
func (w *Worker) handleConn(conn net.Conn) {
	defer conn.Close()
	s := &session{cfg: w.cfg}
	defer s.close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for {
		var req request
		if _, err := readFrame(conn, &req); err != nil {
			return // EOF or dropped coordinator: tear down the session
		}
		workerOpsTotal.With(req.Op).Inc()
		body, err := func() (b []byte, err error) {
			sp := obs.StartSpan("dist", "worker "+req.Op)
			defer sp.End()
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("dist: worker panic in %s: %v", req.Op, r)
				}
			}()
			return s.handle(ctx, req.Op, req.Body)
		}()
		resp := response{Seq: req.Seq, Body: body}
		if err != nil {
			resp = response{Seq: req.Seq, Err: err.Error()}
		}
		if _, err := writeFrame(conn, &resp); err != nil {
			return
		}
	}
}

// session is the per-connection shard state.
type session struct {
	cfg WorkerConfig

	eng    *core.Engine
	table  *core.Table
	lo, hi int
	// globalRows is the coordinator's full row count; groupRows its
	// merge-group height, which every scan here must reuse.
	globalRows int
	groupRows  int

	// base is the raw shard window; view is base with the fused
	// transform chain applied (== base when the chain is empty) or
	// the materialized cache.
	base   *mat.Dense
	view   *mat.Dense
	labels []float64
	chain  []core.BlockTransformer
	cache  *core.Dataset

	// Per-fit label views, computed on first use and invalidated by
	// reset.
	binLabels   []float64
	binPositive float64
	intLabels   []int
	intClasses  int

	// K-means per-fit scratch.
	assignments []int
	dist        []float64
}

// close releases everything the session holds.
func (s *session) close() {
	if s.eng != nil {
		s.eng.Close()
		s.eng = nil
	}
	s.table, s.base, s.view, s.cache = nil, nil, nil, nil
	s.labels, s.chain = nil, nil
	s.resetFitState()
}

// resetFitState drops per-fit caches while keeping the shard open.
func (s *session) resetFitState() {
	s.binLabels, s.intLabels = nil, nil
	s.binPositive, s.intClasses = 0, 0
	s.assignments, s.dist = nil, nil
}

// scanWorkers resolves the pool size for shard scans.
func (s *session) scanWorkers() int { return s.cfg.Workers }

// handle dispatches one op.
func (s *session) handle(ctx context.Context, op string, body []byte) ([]byte, error) {
	switch op {
	case "ping":
		return encodeBody(&resetResp{})
	case "stat":
		var req statReq
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		return s.stat(req)
	case "open":
		var req openReq
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		return s.open(req)
	}
	if s.view == nil {
		return nil, fmt.Errorf("dist: %s before open", op)
	}
	switch op {
	case "reset":
		s.dropChain()
		s.resetFitState()
		return encodeBody(&resetResp{})
	case "stage":
		var req stageReq
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		return s.pushStage(req)
	case "materialize":
		var req materializeReq
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		return s.materialize(ctx)
	case "logreg/grad":
		var req gradReq
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		y, err := s.binaryLabels(req.Binarize, req.Positive)
		if err != nil {
			return nil, err
		}
		groups, stall, err := logreg.GradGroups(ctx, s.view, y, req.Params, req.Intercept, s.scanWorkers(), s.groupRows)
		if err != nil {
			return nil, err
		}
		return encodeBody(&gradResp{Groups: groups, Stall: stall})
	case "softmax/grad":
		var req softmaxReq
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		y, err := s.classLabels(req.Classes)
		if err != nil {
			return nil, err
		}
		groups, stall, err := logreg.SoftmaxGroups(ctx, s.view, y, req.Classes, req.Params, req.Intercept, s.scanWorkers(), s.groupRows)
		if err != nil {
			return nil, err
		}
		return encodeBody(&softmaxResp{Groups: groups, Stall: stall})
	case "linreg/lsq":
		var req lsqReq
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		if s.labels == nil {
			return nil, errors.New("dist: dataset has no labels")
		}
		groups, stall, err := linreg.LsqGroups(ctx, s.view, s.labels, req.Params, req.Intercept, s.scanWorkers(), s.groupRows)
		if err != nil {
			return nil, err
		}
		return encodeBody(&lsqResp{Groups: groups, Stall: stall})
	case "linreg/gram":
		var req gramReq
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		if s.labels == nil {
			return nil, errors.New("dist: dataset has no labels")
		}
		groups, stall, err := linreg.GramGroups(ctx, s.view, s.labels, req.NoIntercept, s.scanWorkers(), s.groupRows)
		if err != nil {
			return nil, err
		}
		return encodeBody(&gramResp{Groups: groups, Stall: stall})
	case "bayes/counts":
		var req bayesReq
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		y, err := s.classLabels(req.Classes)
		if err != nil {
			return nil, err
		}
		groups, stall, err := bayes.CountGroups(ctx, s.view, y, req.Classes, s.scanWorkers(), s.groupRows)
		if err != nil {
			return nil, err
		}
		return encodeBody(&bayesResp{Groups: groups, Stall: stall})
	case "moments":
		groups, stall, err := preprocess.MomentGroups(ctx, s.view, s.scanWorkers(), s.groupRows)
		if err != nil {
			return nil, err
		}
		return encodeBody(&momentsResp{Groups: groups, Stall: stall})
	case "extrema":
		groups, stall, err := preprocess.ExtremaGroups(ctx, s.view, s.scanWorkers(), s.groupRows)
		if err != nil {
			return nil, err
		}
		return encodeBody(&extremaResp{Groups: groups, Stall: stall})
	case "pca/mean":
		groups, stall, err := pca.MeanGroups(ctx, s.view, s.scanWorkers(), s.groupRows)
		if err != nil {
			return nil, err
		}
		return encodeBody(&pcaMeanResp{Groups: groups, Stall: stall})
	case "pca/cov":
		var req pcaCovReq
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		groups, stall, err := pca.CovGroups(ctx, s.view, req.Mean, s.scanWorkers(), s.groupRows)
		if err != nil {
			return nil, err
		}
		return encodeBody(&pcaCovResp{Groups: groups, Stall: stall})
	case "kmeans/assign":
		var req assignReq
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		if s.assignments == nil {
			s.assignments = make([]int, s.view.Rows())
		}
		groups, stall, err := kmeans.AssignGroups(ctx, s.view, s.assignments, req.Centroids, req.K, s.scanWorkers(), s.groupRows)
		if err != nil {
			return nil, err
		}
		return encodeBody(&assignResp{Groups: groups, Stall: stall})
	case "kmeans/seed":
		var req seedReq
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		if s.dist == nil {
			s.dist = make([]float64, s.view.Rows())
			for i := range s.dist {
				s.dist[i] = math.Inf(1)
			}
		}
		groups, stall, err := kmeans.SeedGroups(ctx, s.view, s.dist, req.Prev, s.scanWorkers(), s.groupRows)
		if err != nil {
			return nil, err
		}
		out := make([]massGroup, len(groups))
		for i, g := range groups {
			out[i] = massGroup{Lo: g.Lo, Hi: g.Hi, Mass: *g.State}
		}
		return encodeBody(&seedResp{Groups: out, Stall: stall})
	case "kmeans/sample":
		var req sampleReq
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		if s.dist == nil {
			return nil, errors.New("dist: kmeans/sample before kmeans/seed")
		}
		idx, acc, found := kmeans.SamplePrefix(s.dist, req.Acc, req.Target)
		return encodeBody(&sampleResp{Found: found, Idx: idx, Acc: acc})
	case "kmeans/gather":
		if s.assignments == nil {
			return nil, errors.New("dist: kmeans/gather before kmeans/assign")
		}
		return encodeBody(&gatherResp{Assignments: s.assignments})
	case "row":
		var req rowReq
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		if req.I < 0 || req.I >= s.view.Rows() {
			return nil, fmt.Errorf("dist: row %d out of shard [0, %d)", req.I, s.view.Rows())
		}
		row, stall := s.view.Row(req.I)
		out := make([]float64, len(row))
		copy(out, row)
		return encodeBody(&rowResp{Row: out, Stall: stall})
	}
	return nil, fmt.Errorf("dist: unknown op %q", op)
}

// stat opens path just long enough to report its shape.
func (s *session) stat(req statReq) ([]byte, error) {
	eng := core.New(core.Config{Mode: core.MemoryMapped, Workers: 1})
	defer eng.Close()
	t, err := eng.Open(req.Path)
	if err != nil {
		return nil, err
	}
	rows, cols := t.X.Dims()
	return encodeBody(&statResp{Rows: rows, Cols: cols, HasLabels: t.Labels != nil})
}

// open claims the shard: the engine opens the whole file (mapped
// files share pages between shards on one host; heap mode loads once
// per worker) and the session scans only its row window.
func (s *session) open(req openReq) ([]byte, error) {
	if req.Lo < 0 || req.Hi <= req.Lo {
		return nil, fmt.Errorf("dist: bad shard [%d, %d)", req.Lo, req.Hi)
	}
	if req.GroupRows < 1 {
		return nil, fmt.Errorf("dist: bad group height %d", req.GroupRows)
	}
	if req.Lo%req.GroupRows != 0 {
		return nil, fmt.Errorf("dist: shard start %d is not a multiple of the group height %d", req.Lo, req.GroupRows)
	}
	// Tear down any previous shard first.
	if s.eng != nil {
		s.eng.Close()
	}
	s.table, s.base, s.view, s.cache = nil, nil, nil, nil
	s.labels, s.chain = nil, nil
	s.resetFitState()

	s.eng = core.New(core.Config{Mode: s.cfg.Mode, MemoryBudget: s.cfg.MemoryBudget, Workers: s.cfg.Workers})
	t, err := s.eng.Open(req.Path)
	if err != nil {
		return nil, err
	}
	rows, cols := t.X.Dims()
	if req.Hi > rows {
		return nil, fmt.Errorf("dist: shard [%d, %d) exceeds %d rows", req.Lo, req.Hi, rows)
	}
	s.table = t
	s.lo, s.hi = req.Lo, req.Hi
	s.globalRows = rows
	s.groupRows = req.GroupRows
	s.base = t.X.RowWindow(req.Lo, req.Hi)
	s.view = s.base
	if t.Labels != nil {
		s.labels = t.Labels[req.Lo:req.Hi]
	}
	return encodeBody(&openResp{Rows: s.hi - s.lo, Cols: cols, HasLabels: s.labels != nil})
}

// dropChain discards the fused chain and any materialized cache,
// returning the view to the raw shard window.
func (s *session) dropChain() {
	if s.cache != nil {
		s.cache.Release()
		s.cache = nil
	}
	s.chain = nil
	s.view = s.base
}

// pushStage appends one fitted transformer to the fused chain and
// rebuilds the view. The kernels are the same per-row transforms the
// local pipeline fuses, so the transformed rows are bit-identical.
func (s *session) pushStage(req stageReq) ([]byte, error) {
	if s.cache != nil {
		return nil, errors.New("dist: stage after materialize")
	}
	var bt core.BlockTransformer
	switch req.Kind {
	case "standard":
		bt = scalerStage{s: &preprocess.StandardScaler{Mean: req.Mean, Std: req.Std}}
	case "minmax":
		bt = minmaxStage{s: &preprocess.MinMaxScaler{Min: req.Min, Range: req.Range}}
	case "pca":
		if req.K < 1 || req.D < 1 || len(req.Components) != req.K*req.D {
			return nil, fmt.Errorf("dist: bad pca stage %dx%d with %d component values", req.K, req.D, len(req.Components))
		}
		comp := mat.NewDense(req.K, req.D)
		for i := 0; i < req.K; i++ {
			comp.SetRow(i, req.Components[i*req.D:(i+1)*req.D])
		}
		bt = pcaStage{r: &pca.Result{Components: comp, Mean: req.PCAMean}}
	default:
		return nil, fmt.Errorf("dist: unknown stage kind %q", req.Kind)
	}
	if got, want := bt.InCols(), s.view.Cols(); got != want {
		return nil, fmt.Errorf("dist: stage expects %d columns, view has %d", got, want)
	}
	s.chain = append(s.chain, bt)
	s.view = mat.NewFused(s.base, s.chain[len(s.chain)-1].OutCols(), core.FuseKernels(s.chain))
	return encodeBody(&stageResp{OutCols: s.view.Cols()})
}

// materialize streams the fused view once into engine scratch and
// re-points the view at the cache — the worker half of the pipeline's
// single materialization before a multi-epoch final fit.
func (s *session) materialize(ctx context.Context) ([]byte, error) {
	if !s.view.IsFused() {
		return encodeBody(&materializeResp{})
	}
	ds := &core.Dataset{X: s.view, Workers: s.cfg.Workers, Engine: s.eng}
	cache, err := core.Materialize(ctx, ds, s.scanWorkers())
	if err != nil {
		return nil, err
	}
	s.cache = cache
	s.view = cache.X
	return encodeBody(&materializeResp{})
}

// binaryLabels returns (caching) the 0/1 label view for a logistic
// fit.
func (s *session) binaryLabels(binarize bool, positive float64) ([]float64, error) {
	if s.labels == nil {
		return nil, errors.New("dist: dataset has no labels")
	}
	if !binarize {
		for i, v := range s.labels {
			if v != 0 && v != 1 {
				return nil, fmt.Errorf("dist: label[%d] = %v, want 0 or 1 (global row %d)", i, v, s.lo+i)
			}
		}
		return s.labels, nil
	}
	//m3vet:allow floateq -- cache key: the positive class is a config value compared verbatim, not computed
	if s.binLabels != nil && s.binPositive == positive {
		return s.binLabels, nil
	}
	s.binLabels = preprocess.BinaryLabels(s.labels, positive)
	s.binPositive = positive
	return s.binLabels, nil
}

// classLabels returns (caching) the integer label view for softmax
// and bayes fits.
func (s *session) classLabels(classes int) ([]int, error) {
	if s.labels == nil {
		return nil, errors.New("dist: dataset has no labels")
	}
	if s.intLabels != nil && s.intClasses == classes {
		return s.intLabels, nil
	}
	y, err := preprocess.IntLabels(s.labels, classes)
	if err != nil {
		return nil, fmt.Errorf("dist: shard [%d, %d): %w", s.lo, s.hi, err)
	}
	s.intLabels = y
	s.intClasses = classes
	return s.intLabels, nil
}

// --- Fused-stage wrappers --------------------------------------------
//
// These mirror the root package's Fitted* block kernels exactly (same
// copy + TransformRow / TransformInto sequences), so a worker's fused
// view produces bit-identical transformed rows. They are duplicated
// here because internal/dist cannot import the root package (the root
// package imports dist).

type scalerStage struct{ s *preprocess.StandardScaler }

func (t scalerStage) InCols() int  { return len(t.s.Mean) }
func (t scalerStage) OutCols() int { return len(t.s.Mean) }
func (t scalerStage) BlockKernel() core.RowKernel {
	return func(dst, src []float64) []float64 {
		copy(dst, src)
		t.s.TransformRow(dst)
		return dst
	}
}
func (t scalerStage) Transform(ctx context.Context, ds *core.Dataset) (*core.Dataset, error) {
	return core.TransformDataset(ctx, ds, t.OutCols(), 0, t.BlockKernel)
}
func (t scalerStage) TransformRow(row []float64) []float64 {
	out := append([]float64(nil), row...)
	t.s.TransformRow(out)
	return out
}
func (t scalerStage) Save(path string) error { return modelio.SaveFile(path, t.s) }

type minmaxStage struct{ s *preprocess.MinMaxScaler }

func (t minmaxStage) InCols() int  { return len(t.s.Min) }
func (t minmaxStage) OutCols() int { return len(t.s.Min) }
func (t minmaxStage) BlockKernel() core.RowKernel {
	return func(dst, src []float64) []float64 {
		copy(dst, src)
		t.s.TransformRow(dst)
		return dst
	}
}
func (t minmaxStage) Transform(ctx context.Context, ds *core.Dataset) (*core.Dataset, error) {
	return core.TransformDataset(ctx, ds, t.OutCols(), 0, t.BlockKernel)
}
func (t minmaxStage) TransformRow(row []float64) []float64 {
	out := append([]float64(nil), row...)
	t.s.TransformRow(out)
	return out
}
func (t minmaxStage) Save(path string) error { return modelio.SaveFile(path, t.s) }

type pcaStage struct{ r *pca.Result }

func (t pcaStage) InCols() int  { return t.r.Components.Cols() }
func (t pcaStage) OutCols() int { return t.r.Components.Rows() }
func (t pcaStage) BlockKernel() core.RowKernel {
	centered := make([]float64, t.r.Components.Cols())
	return func(dst, src []float64) []float64 {
		t.r.TransformInto(src, dst, centered)
		return dst
	}
}
func (t pcaStage) Transform(ctx context.Context, ds *core.Dataset) (*core.Dataset, error) {
	return core.TransformDataset(ctx, ds, t.OutCols(), 0, t.BlockKernel)
}
func (t pcaStage) TransformRow(row []float64) []float64 {
	out := make([]float64, t.OutCols())
	t.r.Transform(row, out)
	return out
}
func (t pcaStage) Save(path string) error { return modelio.SaveFile(path, t.r) }
