package dist

import (
	"fmt"

	"m3/internal/exec"
	"m3/internal/perfmodel"
)

// Range is one worker's contiguous row shard [Lo, Hi).
type Range struct{ Lo, Hi int }

// Rows returns the shard's row count.
func (r Range) Rows() int { return r.Hi - r.Lo }

// PlanShards splits n rows into at most k contiguous shards whose
// boundaries all sit on the canonical merge-group grid
// (exec.GroupRows(n)). Group alignment is the bit-identity contract:
// every merge group is computed wholly by one worker, so the
// coordinator's refold replays the local grouped fold operation for
// operation. When n has fewer groups than k, fewer (non-empty) shards
// are returned; callers drive only the returned shards.
func PlanShards(n, k int) ([]Range, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: cannot shard %d rows", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("dist: cannot plan %d shards", k)
	}
	gr := exec.GroupRows(n)
	groups := (n + gr - 1) / gr
	if k > groups {
		k = groups
	}
	shards := make([]Range, 0, k)
	base, rem := groups/k, groups%k
	start := 0
	for i := 0; i < k; i++ {
		count := base
		if i < rem {
			count++
		}
		end := start + count
		lo, hi := start*gr, end*gr
		if hi > n {
			hi = n
		}
		shards = append(shards, Range{Lo: lo, Hi: hi})
		start = end
	}
	return shards, nil
}

// RecommendShards picks a shard count for a dataset of sizeBytes
// using a fitted two-segment scan-cost model (internal/perfmodel) and
// a per-node memory budget: enough shards that every shard drops into
// the model's in-RAM regime (below the knee), clamped to [1, max].
// With no knee — the model never left RAM — one shard suffices and
// the network tax is pure overhead.
func RecommendShards(sizeBytes int64, m *perfmodel.Model, nodeBudget int64, max int) int {
	if max < 1 {
		max = 1
	}
	target := nodeBudget
	if m != nil && m.KneeBytes > 0 && (target <= 0 || int64(m.KneeBytes) < target) {
		target = int64(m.KneeBytes)
	}
	if target <= 0 || sizeBytes <= target {
		return 1
	}
	k := int((sizeBytes + target - 1) / target)
	if k > max {
		k = max
	}
	if k < 1 {
		k = 1
	}
	return k
}
