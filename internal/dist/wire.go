// Package dist implements M3's row-sharded training cluster: K
// workers each own one contiguous, merge-group-aligned row range of a
// dataset file and an engine to scan it; a coordinator broadcasts
// per-iteration state (optimizer parameters, centroids, fitted stage
// statistics) and refolds the per-group partials the workers ship.
//
// Because shard boundaries sit on the canonical merge-group grid
// (exec.GroupRows of the global row count) and every worker scan
// overrides its group height to that global value, the coordinator's
// refold performs exactly the floating-point operations a local
// single-machine fit performs, in exactly the same order. A K-shard
// fit is therefore bit-identical to a 1-worker local fit — same
// predictions, same saved model bytes — for every shardable
// estimator.
//
// The transport is deliberately small: length-prefixed gob frames
// over TCP, one connection per worker, strictly serial
// request/response per connection, per-call deadlines, and
// retry-with-backoff on transient dial errors. No third-party
// dependencies.
package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"time"

	"m3/internal/exec"
	"m3/internal/ml/bayes"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/linreg"
	"m3/internal/ml/logreg"
	"m3/internal/ml/pca"
	"m3/internal/ml/preprocess"
)

// maxFrameBytes bounds a single wire frame; anything larger is a
// protocol error, not a legitimate payload.
const maxFrameBytes = 1 << 30

// request is the coordinator→worker envelope. Body is the
// gob-encoded op payload, nested so the frame layer never needs to
// know the payload's Go type and byte accounting is exact.
type request struct {
	Seq  uint64
	Op   string
	Body []byte
}

// response is the worker→coordinator envelope. A non-empty Err
// carries the worker-side error; Body is then empty.
type response struct {
	Seq  uint64
	Err  string
	Body []byte
}

// encodeBody gobs an op payload into envelope bytes.
func encodeBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("dist: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// decodeBody ungobs envelope bytes into an op payload.
func decodeBody(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("dist: decode %T: %w", v, err)
	}
	return nil
}

// writeFrame writes one length-prefixed gob frame.
func writeFrame(w io.Writer, v any) (int, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return 0, fmt.Errorf("dist: encode frame: %w", err)
	}
	if buf.Len() > maxFrameBytes {
		return 0, fmt.Errorf("dist: frame of %d bytes exceeds limit", buf.Len())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := w.Write(buf.Bytes())
	return 4 + n, err
}

// readFrame reads one length-prefixed gob frame into v, returning the
// bytes consumed.
func readFrame(r io.Reader, v any) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return 4, fmt.Errorf("dist: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 4, err
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return 4 + int(n), fmt.Errorf("dist: decode frame: %w", err)
	}
	return 4 + int(n), nil
}

// dialRetry dials addr, retrying transient failures (refused
// connections, timeouts — a worker still binding its listener) with
// exponential backoff.
func dialRetry(ctx context.Context, addr string, timeout time.Duration, retries int) (net.Conn, error) {
	backoff := 50 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, errors.Join(ctx.Err(), lastErr)
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		d := net.Dialer{Timeout: timeout}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if !transientDialError(err) {
			break
		}
	}
	return nil, fmt.Errorf("dist: dial %s: %w", addr, lastErr)
}

// transientDialError reports whether a dial failure is worth
// retrying: the worker may simply not be listening yet.
func transientDialError(err error) bool {
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// --- Op payloads ------------------------------------------------------
//
// Every type below crosses the wire via gob. Fields are value types
// or slices of them; partial types imported from the ml packages
// export exactly their aggregate fields (scratch buffers are
// unexported and stay worker-side).

// statReq asks a worker to report a dataset file's shape without
// holding it open.
type statReq struct{ Path string }

type statResp struct {
	Rows, Cols int
	HasLabels  bool
}

// openReq assigns the worker its shard: rows [Lo, Hi) of Path, with
// every scan folding at the coordinator's global group height.
type openReq struct {
	Path      string
	Lo, Hi    int
	GroupRows int
}

type openResp struct {
	Rows, Cols int
	HasLabels  bool
}

// resetReq clears per-fit state (transform chain, caches, label
// views, k-means scratch) while keeping the shard open.
type resetReq struct{}

type resetResp struct{}

// stageReq appends one fitted transformer stage to the worker's fused
// view. Exactly one of the stage groups is populated, per Kind.
type stageReq struct {
	// Kind is "standard", "minmax" or "pca".
	Kind string
	// Mean/Std parameterize a standard scaler.
	Mean, Std []float64
	// Min/Range parameterize a min-max scaler.
	Min, Range []float64
	// Components (K×D row-major), PCAMean, K and D parameterize a
	// PCA projection.
	Components []float64
	PCAMean    []float64
	K, D       int
}

type stageResp struct{ OutCols int }

// materializeReq streams the worker's fused view once into engine
// scratch, so multi-epoch finals re-scan the transformed shard
// instead of re-running the chain every iteration — the distributed
// mirror of the pipeline's single cache materialization.
type materializeReq struct{}

type materializeResp struct{ Stall float64 }

// gradReq is one binary-logistic objective evaluation at Params.
type gradReq struct {
	Params    []float64
	Intercept bool
	Binarize  bool
	Positive  float64
}

type gradResp struct {
	Groups []exec.GroupPartial[*logreg.GradPartial]
	Stall  float64
}

// softmaxReq is one multiclass objective evaluation at Params.
type softmaxReq struct {
	Params    []float64
	Classes   int
	Intercept bool
}

type softmaxResp struct {
	Groups []exec.GroupPartial[*logreg.SoftmaxPartial]
	Stall  float64
}

// lsqReq is one least-squares objective evaluation at Params.
type lsqReq struct {
	Params    []float64
	Intercept bool
}

type lsqResp struct {
	Groups []exec.GroupPartial[*linreg.LsqPartial]
	Stall  float64
}

// gramReq is the exact path's single normal-equations scan.
type gramReq struct{ NoIntercept bool }

type gramResp struct {
	Groups []exec.GroupPartial[*linreg.GramPartial]
	Stall  float64
}

// bayesReq is the naive-Bayes counting scan.
type bayesReq struct{ Classes int }

type bayesResp struct {
	Groups []exec.GroupPartial[*bayes.CountPartial]
	Stall  float64
}

// momentsReq is the standard-scaler Welford scan.
type momentsReq struct{}

type momentsResp struct {
	Groups []exec.GroupPartial[*preprocess.Moments]
	Stall  float64
}

// extremaReq is the min-max scan.
type extremaReq struct{}

type extremaResp struct {
	Groups []exec.GroupPartial[*preprocess.Extrema]
	Stall  float64
}

// pcaMeanReq is the PCA column-sum pass.
type pcaMeanReq struct{}

type pcaMeanResp struct {
	Groups []exec.GroupPartial[[]float64]
	Stall  float64
}

// pcaCovReq is the PCA scatter pass at the global mean.
type pcaCovReq struct{ Mean []float64 }

type pcaCovResp struct {
	Groups []exec.GroupPartial[*pca.CovPartial]
	Stall  float64
}

// assignReq is one Lloyd assignment pass at Centroids (K×D
// row-major).
type assignReq struct {
	Centroids []float64
	K         int
}

type assignResp struct {
	Groups []exec.GroupPartial[*kmeans.AssignPartial]
	Stall  float64
}

// seedReq is one k-means++ distance-update pass against the
// previously chosen centroid.
type seedReq struct{ Prev []float64 }

// massGroup is one merge group's k-means++ probability mass. The
// local fold's state is *float64; shipping the scalar by value keeps
// gob from eliding all-zero groups (it omits zero fields, which would
// turn a zero-mass group into a nil pointer on decode).
type massGroup struct {
	Lo, Hi int
	Mass   float64
}

type seedResp struct {
	Groups []massGroup
	Stall  float64
}

// sampleReq resumes the sequential k-means++ prefix-sum walk on this
// shard with the running accumulator from the shards before it.
type sampleReq struct {
	Acc    float64
	Target float64
}

type sampleResp struct {
	Found bool
	// Idx is shard-local; the coordinator adds the shard offset.
	Idx int
	Acc float64
}

// rowReq fetches one transformed row (shard-local index) — centroid
// initialization and empty-cluster repair.
type rowReq struct{ I int }

type rowResp struct {
	Row   []float64
	Stall float64
}

// gatherReq collects the shard's final k-means assignments.
type gatherReq struct{}

type gatherResp struct{ Assignments []int }

// Spec describes one fit the coordinator drives. It is a flat,
// gob-friendly mirror of the public estimator configuration (function
// fields like iteration callbacks cannot cross the wire). One Spec
// describes either a single estimator or a pipeline (Stages +
// Final).
type Spec struct {
	// Algo selects the program: "logistic", "softmax", "linear",
	// "linear-exact", "bayes", "kmeans", "pca", "standard-scaler",
	// "minmax-scaler" or "pipeline".
	Algo string

	// Logistic: derive 0/1 labels by comparing to Positive.
	Binarize bool
	Positive float64

	// Softmax / bayes class count.
	Classes int

	// Shared optimizer surface (logistic, softmax, linear).
	Lambda        float64
	NoIntercept   bool
	MaxIterations int
	GradTol       float64

	// Bayes.
	VarSmoothing float64

	// K-means.
	K                int
	Tol              float64
	Seed             uint64
	RandomInit       bool
	RunAllIterations bool
	// InitCentroids is K×D row-major when non-nil.
	InitCentroids []float64

	// PCA.
	Components int

	// Pipeline: transformer stages then the final estimator.
	Stages []Spec
	Final  *Spec
}
