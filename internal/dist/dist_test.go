package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"m3/internal/core"
	"m3/internal/dataset"
	"m3/internal/exec"
	"m3/internal/mat"
	"m3/internal/ml/bayes"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/linreg"
	"m3/internal/ml/logreg"
	"m3/internal/ml/modelio"
	"m3/internal/ml/pca"
	"m3/internal/ml/preprocess"
)

// writeTestData writes a deterministic labelled dataset file and
// returns its path.
func writeTestData(t *testing.T, n, d, classes int) string {
	t.Helper()
	path := t.TempDir() + "/data.m3"
	w, err := dataset.Create(path, int64(n), int64(d), true)
	if err != nil {
		t.Fatal(err)
	}
	s := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s>>11) / float64(1<<53)
	}
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = next()*4 - 2
		}
		label := float64(i % classes)
		if err := w.WriteRow(row, label); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// openLocal loads the dataset onto the heap for the reference fits.
func openLocal(t *testing.T, path string) (*mat.Dense, []float64) {
	t.Helper()
	eng := core.New(core.Config{Mode: core.InMemory, Workers: 2})
	t.Cleanup(func() { eng.Close() })
	tab, err := eng.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return tab.X, tab.Labels
}

// startCluster launches k in-process workers on ephemeral ports and
// returns a coordinator dialed to all of them.
func startCluster(t *testing.T, k int, cfg WorkerConfig) *Coordinator {
	t.Helper()
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		w := NewWorker(cfg)
		go w.Serve(ln)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			w.Shutdown(ctx)
		})
	}
	c, err := DialWorkers(context.Background(), addrs, Options{CallTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// eqFloats asserts bit-exact equality of two float slices.
func eqFloats(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %v (%#x), want %v (%#x)", name, i,
				got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func TestPlanShardsAlignment(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{1, 1}, {255, 4}, {256, 4}, {1000, 3}, {1100, 3}, {1 << 16, 7}, {300, 64},
	} {
		shards, err := PlanShards(tc.n, tc.k)
		if err != nil {
			t.Fatalf("PlanShards(%d, %d): %v", tc.n, tc.k, err)
		}
		gr := exec.GroupRows(tc.n)
		if len(shards) > tc.k {
			t.Fatalf("PlanShards(%d, %d): %d shards", tc.n, tc.k, len(shards))
		}
		prev := 0
		for i, s := range shards {
			if s.Lo != prev {
				t.Fatalf("shard %d starts at %d, want %d", i, s.Lo, prev)
			}
			if s.Lo%gr != 0 {
				t.Fatalf("shard %d start %d not group-aligned (gr=%d)", i, s.Lo, gr)
			}
			if s.Rows() <= 0 {
				t.Fatalf("shard %d empty: %+v", i, s)
			}
			prev = s.Hi
		}
		if prev != tc.n {
			t.Fatalf("shards cover [0, %d), want [0, %d)", prev, tc.n)
		}
	}
	if _, err := PlanShards(0, 2); err == nil {
		t.Fatal("PlanShards(0, 2) should fail")
	}
}

func TestLogisticParity(t *testing.T) {
	path := writeTestData(t, 1100, 6, 10)
	x, labels := openLocal(t, path)
	y := preprocess.BinaryLabels(labels, 3)
	want, err := logreg.Train(context.Background(), x, y, logreg.Options{MaxIterations: 8})
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []core.Mode{core.InMemory, core.MemoryMapped} {
		t.Run(mode.String(), func(t *testing.T) {
			c := startCluster(t, 3, WorkerConfig{Mode: mode, Workers: 3})
			got, err := c.Fit(context.Background(), path, Spec{
				Algo: "logistic", Binarize: true, Positive: 3, MaxIterations: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			m := got.(*logreg.Model)
			eqFloats(t, "weights", m.Weights, want.Weights)
			if math.Float64bits(m.Intercept) != math.Float64bits(want.Intercept) {
				t.Fatalf("intercept %v, want %v", m.Intercept, want.Intercept)
			}
			if c.Shards() != 3 {
				t.Fatalf("active shards = %d, want 3", c.Shards())
			}
			if st := c.Stats(); st.Rounds == 0 || st.BytesSent == 0 || st.BytesReceived == 0 {
				t.Fatalf("stats not accounted: %+v", st)
			}
		})
	}
}

func TestSoftmaxParity(t *testing.T) {
	path := writeTestData(t, 1100, 5, 4)
	x, labels := openLocal(t, path)
	y, err := preprocess.IntLabels(labels, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := logreg.TrainSoftmax(context.Background(), x, y, 4, logreg.Options{MaxIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	c := startCluster(t, 3, WorkerConfig{Mode: core.InMemory, Workers: 2})
	got, err := c.Fit(context.Background(), path, Spec{Algo: "softmax", Classes: 4, MaxIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	m := got.(*logreg.SoftmaxModel)
	eqFloats(t, "weights", m.Weights, want.Weights)
	eqFloats(t, "bias", m.Bias, want.Bias)
}

func TestLinearParity(t *testing.T) {
	path := writeTestData(t, 1100, 4, 7)
	x, labels := openLocal(t, path)
	c := startCluster(t, 3, WorkerConfig{Mode: core.InMemory, Workers: 2})

	t.Run("lbfgs", func(t *testing.T) {
		want, err := linreg.Train(context.Background(), x, labels, linreg.Options{MaxIterations: 8})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Fit(context.Background(), path, Spec{Algo: "linear", MaxIterations: 8})
		if err != nil {
			t.Fatal(err)
		}
		m := got.(*linreg.Model)
		eqFloats(t, "weights", m.Weights, want.Weights)
		if math.Float64bits(m.Intercept) != math.Float64bits(want.Intercept) {
			t.Fatalf("intercept %v, want %v", m.Intercept, want.Intercept)
		}
	})
	t.Run("exact", func(t *testing.T) {
		want, err := linreg.TrainExact(context.Background(), x, labels, linreg.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Fit(context.Background(), path, Spec{Algo: "linear-exact"})
		if err != nil {
			t.Fatal(err)
		}
		m := got.(*linreg.Model)
		eqFloats(t, "weights", m.Weights, want.Weights)
		if math.Float64bits(m.Intercept) != math.Float64bits(want.Intercept) {
			t.Fatalf("intercept %v, want %v", m.Intercept, want.Intercept)
		}
	})
}

func TestBayesParity(t *testing.T) {
	path := writeTestData(t, 1100, 6, 5)
	x, labels := openLocal(t, path)
	y, err := preprocess.IntLabels(labels, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := bayes.Train(context.Background(), x, y, 5, bayes.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := startCluster(t, 4, WorkerConfig{Mode: core.MemoryMapped, Workers: 2})
	got, err := c.Fit(context.Background(), path, Spec{Algo: "bayes", Classes: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := got.(*bayes.Model)
	eqFloats(t, "priors", m.LogPrior, want.LogPrior)
	eqFloats(t, "means", m.Mean, want.Mean)
	eqFloats(t, "variances", m.Var, want.Var)
}

func TestPCAParity(t *testing.T) {
	path := writeTestData(t, 1100, 6, 3)
	x, _ := openLocal(t, path)
	want, err := pca.Fit(context.Background(), x, pca.Options{Components: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	c := startCluster(t, 3, WorkerConfig{Mode: core.InMemory, Workers: 2})
	got, err := c.Fit(context.Background(), path, Spec{Algo: "pca", Components: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r := got.(*pca.Result)
	eqFloats(t, "mean", r.Mean, want.Mean)
	eqFloats(t, "eigenvalues", r.Eigenvalues, want.Eigenvalues)
	for i := 0; i < 3; i++ {
		eqFloats(t, fmt.Sprintf("component %d", i), r.Components.RawRow(i), want.Components.RawRow(i))
	}
}

func TestKMeansParity(t *testing.T) {
	path := writeTestData(t, 1100, 5, 3)
	x, _ := openLocal(t, path)
	for _, tc := range []struct {
		name string
		opts kmeans.Options
		spec Spec
	}{
		{
			name: "kmeanspp",
			opts: kmeans.Options{K: 4, MaxIterations: 10, Seed: 7},
			spec: Spec{Algo: "kmeans", K: 4, MaxIterations: 10, Seed: 7},
		},
		{
			name: "random-init",
			opts: kmeans.Options{K: 3, MaxIterations: 10, Seed: 3, RandomInit: true},
			spec: Spec{Algo: "kmeans", K: 3, MaxIterations: 10, Seed: 3, RandomInit: true},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := kmeans.Run(context.Background(), x, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			c := startCluster(t, 3, WorkerConfig{Mode: core.MemoryMapped, Workers: 2})
			got, err := c.Fit(context.Background(), path, tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			r := got.(*kmeans.Result)
			if math.Float64bits(r.Inertia) != math.Float64bits(want.Inertia) {
				t.Fatalf("inertia %v, want %v", r.Inertia, want.Inertia)
			}
			if r.Iterations != want.Iterations || r.Converged != want.Converged {
				t.Fatalf("iters/converged = %d/%v, want %d/%v", r.Iterations, r.Converged, want.Iterations, want.Converged)
			}
			k, _ := r.Centroids.Dims()
			for i := 0; i < k; i++ {
				eqFloats(t, fmt.Sprintf("centroid %d", i), r.Centroids.RawRow(i), want.Centroids.RawRow(i))
			}
			if len(r.Assignments) != len(want.Assignments) {
				t.Fatalf("%d assignments, want %d", len(r.Assignments), len(want.Assignments))
			}
			for i := range r.Assignments {
				if r.Assignments[i] != want.Assignments[i] {
					t.Fatalf("assignment[%d] = %d, want %d", i, r.Assignments[i], want.Assignments[i])
				}
			}
		})
	}
}

// TestScalerPipelineParity checks the streaming pipeline path: a
// standard scaler fitted distributively, pushed as a fused stage, and
// a naive Bayes final trained off the fused shard views — against the
// identical local fused composition.
func TestScalerPipelineParity(t *testing.T) {
	path := writeTestData(t, 1100, 6, 4)
	x, labels := openLocal(t, path)
	y, err := preprocess.IntLabels(labels, 4)
	if err != nil {
		t.Fatal(err)
	}
	scaler, err := preprocess.FitStandard(context.Background(), x, preprocess.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fused := mat.NewFused(x, x.Cols(), core.FuseKernels([]core.BlockTransformer{scalerStage{s: scaler}}))
	want, err := bayes.Train(context.Background(), fused, y, 4, bayes.Options{})
	if err != nil {
		t.Fatal(err)
	}

	c := startCluster(t, 3, WorkerConfig{Mode: core.InMemory, Workers: 2})
	got, err := c.Fit(context.Background(), path, Spec{
		Algo:   "pipeline",
		Stages: []Spec{{Algo: "standard-scaler"}},
		Final:  &Spec{Algo: "bayes", Classes: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := got.(*modelio.Pipeline)
	if len(p.Stages) != 2 {
		t.Fatalf("%d pipeline stages, want 2", len(p.Stages))
	}
	sc := p.Stages[0].(*preprocess.StandardScaler)
	eqFloats(t, "scaler mean", sc.Mean, scaler.Mean)
	eqFloats(t, "scaler std", sc.Std, scaler.Std)
	final := p.Stages[1].(*bayes.Model)
	eqFloats(t, "priors", final.LogPrior, want.LogPrior)
	eqFloats(t, "means", final.Mean, want.Mean)
	eqFloats(t, "variances", final.Var, want.Var)
}

// TestMaterializedPipelineParity checks the multi-epoch pipeline path:
// the coordinator must order a shard-local materialize before a
// logistic final so every optimizer pass reads a cached shard instead
// of re-running the fused transform — and the result must still match
// the local pipeline, which materializes the same way.
func TestMaterializedPipelineParity(t *testing.T) {
	path := writeTestData(t, 1100, 6, 10)
	x, labels := openLocal(t, path)
	y := preprocess.BinaryLabels(labels, 2)
	scaler, err := preprocess.FitStandard(context.Background(), x, preprocess.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fused := mat.NewFused(x, x.Cols(), core.FuseKernels([]core.BlockTransformer{scalerStage{s: scaler}}))
	want, err := logreg.Train(context.Background(), fused, y, logreg.Options{MaxIterations: 8})
	if err != nil {
		t.Fatal(err)
	}

	c := startCluster(t, 3, WorkerConfig{Mode: core.MemoryMapped, Workers: 2})
	got, err := c.Fit(context.Background(), path, Spec{
		Algo:   "pipeline",
		Stages: []Spec{{Algo: "standard-scaler"}},
		Final:  &Spec{Algo: "logistic", Binarize: true, Positive: 2, MaxIterations: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := got.(*modelio.Pipeline)
	m := p.Stages[len(p.Stages)-1].(*logreg.Model)
	eqFloats(t, "weights", m.Weights, want.Weights)
	if math.Float64bits(m.Intercept) != math.Float64bits(want.Intercept) {
		t.Fatalf("intercept %v, want %v", m.Intercept, want.Intercept)
	}
}

// TestWorkerDiesMidFit kills one worker's connections mid-optimization
// and checks the coordinator surfaces a clean, attributed error
// instead of hanging.
func TestWorkerDiesMidFit(t *testing.T) {
	path := writeTestData(t, 1100, 6, 10)
	addrs := make([]string, 3)
	workers := make([]*Worker, 3)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		workers[i] = NewWorker(WorkerConfig{Mode: core.InMemory, Workers: 2})
		go workers[i].Serve(ln)
	}
	defer func() {
		for _, w := range workers {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			w.Shutdown(ctx)
			cancel()
		}
	}()
	c, err := DialWorkers(context.Background(), addrs, Options{CallTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Kill worker 1 once the fit is demonstrably mid-optimization.
	go func() {
		for c.Stats().Rounds < 3 {
			time.Sleep(time.Millisecond)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // force: close live connections instead of draining
		workers[1].Shutdown(ctx)
	}()
	_, err = c.Fit(context.Background(), path, Spec{
		Algo: "logistic", Binarize: true, Positive: 3, MaxIterations: 100000, GradTol: 1e-300,
	})
	if err == nil {
		t.Fatal("fit succeeded despite a dead worker")
	}
	if !strings.Contains(err.Error(), addrs[1]) {
		t.Fatalf("error does not name the dead worker %s: %v", addrs[1], err)
	}
}

// TestCancelMidFit cancels the coordinator's context mid-round and
// checks the fit unwinds promptly with ctx.Err().
func TestCancelMidFit(t *testing.T) {
	path := writeTestData(t, 1100, 6, 10)
	c := startCluster(t, 3, WorkerConfig{Mode: core.InMemory, Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel once the fit is demonstrably mid-optimization.
		for c.Stats().Rounds < 3 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	start := time.Now()
	_, err := c.Fit(ctx, path, Spec{
		Algo: "logistic", Binarize: true, Positive: 3, MaxIterations: 100000, GradTol: 1e-300,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("cancellation took %v", took)
	}
}

// TestSGDRejected checks the sequential trainer is refused with a
// useful message.
func TestSGDRejected(t *testing.T) {
	path := writeTestData(t, 600, 4, 2)
	c := startCluster(t, 2, WorkerConfig{Mode: core.InMemory, Workers: 1})
	_, err := c.Fit(context.Background(), path, Spec{Algo: "sgd"})
	if err == nil || !strings.Contains(err.Error(), "sequential") {
		t.Fatalf("err = %v, want sequential-trainer rejection", err)
	}
}

// TestMoreWorkersThanGroups: a tiny dataset must use fewer shards
// than workers, not fail.
func TestMoreWorkersThanGroups(t *testing.T) {
	path := writeTestData(t, 300, 4, 2) // 2 groups of 256
	x, labels := openLocal(t, path)
	y := preprocess.BinaryLabels(labels, 1)
	want, err := logreg.Train(context.Background(), x, y, logreg.Options{MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	c := startCluster(t, 4, WorkerConfig{Mode: core.InMemory, Workers: 1})
	got, err := c.Fit(context.Background(), path, Spec{
		Algo: "logistic", Binarize: true, Positive: 1, MaxIterations: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 2 {
		t.Fatalf("shards = %d, want 2", c.Shards())
	}
	eqFloats(t, "weights", got.(*logreg.Model).Weights, want.Weights)
}
