package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// ExportCSV writes an opened dataset as CSV. When labels are present
// they become the last column. Intended for interoperability checks
// and small extracts, not for the multi-GB files themselves.
func (d *Dataset) ExportCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cols := int(d.Cols)
	rec := make([]byte, 0, cols*16)
	for i := int64(0); i < d.Rows; i++ {
		rec = rec[:0]
		row := d.x[i*d.Cols : (i+1)*d.Cols]
		for j, v := range row {
			if j > 0 {
				rec = append(rec, ',')
			}
			rec = strconv.AppendFloat(rec, v, 'g', -1, 64)
		}
		if d.HasLabels {
			rec = append(rec, ',')
			rec = strconv.AppendFloat(rec, d.labels[i], 'g', -1, 64)
		}
		rec = append(rec, '\n')
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ImportCSV converts a CSV file (numeric fields only) into dataset
// format. If labelLast is true the final column becomes the label
// vector. It streams with two passes: one to count rows, one to write.
func ImportCSV(csvPath, outPath string, labelLast bool) error {
	rows, cols, err := csvShape(csvPath)
	if err != nil {
		return err
	}
	featCols := cols
	if labelLast {
		if cols < 2 {
			return fmt.Errorf("dataset: csv %q has %d columns, need >= 2 for labels", csvPath, cols)
		}
		featCols--
	}
	f, err := os.Open(csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(bufio.NewReader(f))
	r.FieldsPerRecord = cols

	w, err := Create(outPath, int64(rows), int64(featCols), labelLast)
	if err != nil {
		return err
	}
	rowBuf := make([]float64, featCols)
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			w.f.Close()
			return err
		}
		var label float64
		for j, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				w.f.Close()
				return fmt.Errorf("dataset: csv %q: bad number %q: %w", csvPath, field, err)
			}
			if labelLast && j == cols-1 {
				label = v
			} else {
				rowBuf[j] = v
			}
		}
		if err := w.WriteRow(rowBuf, label); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.Close()
}

func csvShape(path string) (rows, cols int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := csv.NewReader(bufio.NewReader(f))
	r.ReuseRecord = true
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, err
		}
		if rows == 0 {
			cols = len(rec)
		}
		rows++
	}
	if rows == 0 {
		return 0, 0, fmt.Errorf("dataset: csv %q is empty", path)
	}
	return rows, cols, nil
}
