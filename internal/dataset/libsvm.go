package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ImportLibSVM converts a libsvm/svmlight file ("label idx:val ...",
// 1-based feature indices) into the dense M3 dataset format. The
// feature dimensionality is the maximum index seen; absent features
// are zero. It streams with two passes.
func ImportLibSVM(svmPath, outPath string) error {
	rows, cols, err := libsvmShape(svmPath)
	if err != nil {
		return err
	}
	f, err := os.Open(svmPath)
	if err != nil {
		return err
	}
	defer f.Close()

	w, err := Create(outPath, int64(rows), int64(cols), true)
	if err != nil {
		return err
	}
	rowBuf := make([]float64, cols)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		label, feats, err := parseLibSVMLine(line)
		if err != nil {
			w.f.Close()
			return fmt.Errorf("dataset: %s:%d: %w", svmPath, lineNo, err)
		}
		for i := range rowBuf {
			rowBuf[i] = 0
		}
		for _, fv := range feats {
			rowBuf[fv.idx-1] = fv.val
		}
		if err := w.WriteRow(rowBuf, label); err != nil {
			w.f.Close()
			return err
		}
	}
	if err := sc.Err(); err != nil {
		w.f.Close()
		return err
	}
	return w.Close()
}

type featVal struct {
	idx int
	val float64
}

func parseLibSVMLine(line string) (label float64, feats []featVal, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return 0, nil, fmt.Errorf("empty record")
	}
	label, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, nil, fmt.Errorf("bad label %q: %w", fields[0], err)
	}
	for _, tok := range fields[1:] {
		colon := strings.IndexByte(tok, ':')
		if colon <= 0 {
			return 0, nil, fmt.Errorf("bad feature %q", tok)
		}
		idx, err := strconv.Atoi(tok[:colon])
		if err != nil || idx < 1 {
			return 0, nil, fmt.Errorf("bad feature index %q", tok[:colon])
		}
		val, err := strconv.ParseFloat(tok[colon+1:], 64)
		if err != nil {
			return 0, nil, fmt.Errorf("bad feature value %q: %w", tok[colon+1:], err)
		}
		feats = append(feats, featVal{idx: idx, val: val})
	}
	return label, feats, nil
}

func libsvmShape(path string) (rows, maxIdx int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		_, feats, err := parseLibSVMLine(line)
		if err != nil {
			return 0, 0, fmt.Errorf("dataset: %s:%d: %w", path, lineNo, err)
		}
		rows++
		for _, fv := range feats {
			if fv.idx > maxIdx {
				maxIdx = fv.idx
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	if rows == 0 {
		return 0, 0, fmt.Errorf("dataset: libsvm %q has no records", path)
	}
	if maxIdx == 0 {
		return 0, 0, fmt.Errorf("dataset: libsvm %q has no features", path)
	}
	return rows, maxIdx, nil
}

// ExportLibSVM writes an opened dataset in libsvm format (zeros are
// omitted, indices 1-based). Datasets without labels get label 0.
func (d *Dataset) ExportLibSVM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := int64(0); i < d.Rows; i++ {
		label := 0.0
		if d.HasLabels {
			label = d.labels[i]
		}
		if _, err := bw.WriteString(strconv.FormatFloat(label, 'g', -1, 64)); err != nil {
			return err
		}
		row := d.x[i*d.Cols : (i+1)*d.Cols]
		for j, v := range row {
			if v == 0 {
				continue
			}
			if _, err := fmt.Fprintf(bw, " %d:%s", j+1, strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
