package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"m3/internal/mmap"
	"m3/internal/store"
)

func tmpPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Rows: 123, Cols: 456, HasLabels: true, Checksum: 0xdeadbeef}
	got, err := parseHeader(h.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip: %+v != %+v", got, h)
	}
}

func TestParseHeaderRejects(t *testing.T) {
	good := Header{Rows: 1, Cols: 1}.marshal()

	short := good[:100]
	if _, err := parseHeader(short); err == nil {
		t.Error("accepted short header")
	}

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'
	if _, err := parseHeader(badMagic); err == nil {
		t.Error("accepted bad magic")
	}

	badVer := append([]byte(nil), good...)
	badVer[8] = 99
	if _, err := parseHeader(badVer); err == nil {
		t.Error("accepted bad version")
	}

	zeroRows := Header{Rows: 0, Cols: 5}
	if _, err := parseHeader(zeroRows.marshal()); err == nil {
		t.Error("accepted zero rows")
	}
}

func TestHeaderSizes(t *testing.T) {
	h := Header{Rows: 10, Cols: 4, HasLabels: true}
	if h.DataBytes() != 320 {
		t.Errorf("DataBytes = %d", h.DataBytes())
	}
	if h.LabelBytes() != 80 {
		t.Errorf("LabelBytes = %d", h.LabelBytes())
	}
	if h.FileSize() != HeaderSize+400 {
		t.Errorf("FileSize = %d", h.FileSize())
	}
	h.HasLabels = false
	if h.LabelBytes() != 0 {
		t.Errorf("LabelBytes without labels = %d", h.LabelBytes())
	}
}

func TestWriteOpenRoundTrip(t *testing.T) {
	path := tmpPath(t, "rt.m3")
	data := make([]float64, 20)
	labels := make([]float64, 5)
	for i := range data {
		data[i] = float64(i) * 0.5
	}
	for i := range labels {
		labels[i] = float64(i % 2)
	}
	if err := WriteMatrix(path, data, 5, 4, labels); err != nil {
		t.Fatal(err)
	}

	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Rows != 5 || d.Cols != 4 || !d.HasLabels {
		t.Fatalf("header = %+v", d.Header)
	}
	for i, v := range d.RawX() {
		if v != float64(i)*0.5 {
			t.Fatalf("x[%d] = %v", i, v)
		}
	}
	for i, v := range d.Labels() {
		if v != float64(i%2) {
			t.Fatalf("label[%d] = %v", i, v)
		}
	}
	if err := d.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	m := d.X()
	if m.Rows() != 5 || m.Cols() != 4 {
		t.Errorf("X dims %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 3) != data[11] {
		t.Errorf("X(2,3) = %v want %v", m.At(2, 3), data[11])
	}
}

func TestWriteMatrixNoLabels(t *testing.T) {
	path := tmpPath(t, "nl.m3")
	if err := WriteMatrix(path, []float64{1, 2, 3, 4}, 2, 2, nil); err != nil {
		t.Fatal(err)
	}
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.HasLabels || d.Labels() != nil {
		t.Error("labels unexpectedly present")
	}
}

func TestWriterRowValidation(t *testing.T) {
	path := tmpPath(t, "v.m3")
	w, err := Create(path, 2, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRow([]float64{1, 2}, 0); err == nil {
		t.Error("accepted short row")
	}
	if err := w.WriteRow([]float64{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	// Close with missing rows must fail.
	if err := w.Close(); err == nil {
		t.Error("Close accepted missing rows")
	}
}

func TestWriterTooManyRows(t *testing.T) {
	w, err := Create(tmpPath(t, "o.m3"), 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRow([]float64{1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRow([]float64{2}, 0); err == nil {
		t.Error("accepted extra row")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Writing after close fails; double close is fine.
	if err := w.WriteRow([]float64{3}, 0); err == nil {
		t.Error("write after close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestOpenRejectsTruncated(t *testing.T) {
	path := tmpPath(t, "tr.m3")
	if err := WriteMatrix(path, []float64{1, 2, 3, 4}, 2, 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, HeaderSize+8); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("opened truncated file")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := tmpPath(t, "g.m3")
	if err := os.WriteFile(path, bytes.Repeat([]byte{0xff}, HeaderSize*2), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("opened garbage file")
	}
	if _, err := Open(tmpPath(t, "missing.m3")); err == nil {
		t.Error("opened missing file")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	path := tmpPath(t, "c.m3")
	if err := WriteMatrix(path, []float64{1, 2, 3, 4}, 2, 2, nil); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0x42}, HeaderSize+3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Verify(); err == nil {
		t.Error("Verify missed corruption")
	}
}

func TestReadAll(t *testing.T) {
	path := tmpPath(t, "ra.m3")
	data := []float64{1, 2, 3, 4, 5, 6}
	labels := []float64{0, 1}
	if err := WriteMatrix(path, data, 2, 3, labels); err != nil {
		t.Fatal(err)
	}
	x, got, hdr, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Rows != 2 || hdr.Cols != 3 {
		t.Fatalf("hdr %+v", hdr)
	}
	for i := range data {
		if x[i] != data[i] {
			t.Fatalf("x[%d] = %v", i, x[i])
		}
	}
	for i := range labels {
		if got[i] != labels[i] {
			t.Fatalf("labels[%d] = %v", i, got[i])
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	csvPath := tmpPath(t, "in.csv")
	csvData := "1,2,0\n3,4,1\n5.5,6.5,0\n"
	if err := os.WriteFile(csvPath, []byte(csvData), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := tmpPath(t, "out.m3")
	if err := ImportCSV(csvPath, outPath, true); err != nil {
		t.Fatal(err)
	}
	d, err := Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Rows != 3 || d.Cols != 2 || !d.HasLabels {
		t.Fatalf("imported header %+v", d.Header)
	}
	if d.RawX()[4] != 5.5 || d.Labels()[1] != 1 {
		t.Errorf("imported values wrong: %v %v", d.RawX(), d.Labels())
	}

	var buf bytes.Buffer
	if err := d.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != csvData {
		t.Errorf("ExportCSV = %q want %q", got, csvData)
	}
}

func TestImportCSVErrors(t *testing.T) {
	empty := tmpPath(t, "e.csv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ImportCSV(empty, tmpPath(t, "e.m3"), false); err == nil {
		t.Error("imported empty csv")
	}

	bad := tmpPath(t, "b.csv")
	if err := os.WriteFile(bad, []byte("1,hello\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ImportCSV(bad, tmpPath(t, "b.m3"), false); err == nil {
		t.Error("imported non-numeric csv")
	}
	if err := ImportCSV(bad, tmpPath(t, "b2.m3"), true); err == nil ||
		!strings.Contains(err.Error(), "bad number") {
		t.Errorf("label import error = %v", err)
	}

	one := tmpPath(t, "one.csv")
	if err := os.WriteFile(one, []byte("1\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ImportCSV(one, tmpPath(t, "one.m3"), true); err == nil {
		t.Error("accepted 1-column csv with labelLast")
	}
}

func TestLargeSparseDatasetOpens(t *testing.T) {
	// A dataset much larger than this test's heap usage must open
	// instantly because Open maps rather than reads.
	path := tmpPath(t, "big.m3")
	const rows, cols = 1 << 17, 128 // 128 MiB payload
	w, err := Create(path, rows, cols, false)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, cols)
	for i := 0; i < rows; i++ {
		row[0] = float64(i)
		if err := w.WriteRow(row, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Spot-check a few rows without scanning everything.
	m := d.X()
	for _, i := range []int{0, 1, rows / 2, rows - 1} {
		if got := m.At(i, 0); got != float64(i) {
			t.Errorf("row %d marker = %v", i, got)
		}
	}
}

// TestMappedDatasetSupportsParallelLayer: the matrix returned by
// Dataset.X must expose the real mapped backend — concurrent-safe
// Touch accounting and ranged advice — so the chunked-execution layer
// parallelizes and prefetches on the Engine's mmap training path
// instead of silently degrading to a heap facade.
func TestMappedDatasetSupportsParallelLayer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.m3")
	data := make([]float64, 6*4)
	for i := range data {
		data[i] = float64(i)
	}
	if err := WriteMatrix(path, data, 6, 4, nil); err != nil {
		t.Fatal(err)
	}
	ds, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	x := ds.X()
	s := x.Store()
	if c, ok := s.(store.ConcurrentToucher); !ok || !c.ConcurrentSafe() {
		t.Error("mapped dataset store is not concurrent-safe; parallel scans will clamp to one worker")
	}
	ra, ok := s.(store.RangeAdviser)
	if !ok {
		t.Fatal("mapped dataset store has no AdviseRange; block prefetch is dead")
	}
	if err := ra.AdviseRange(mmap.WillNeed, 0, 8); err != nil {
		t.Errorf("AdviseRange: %v", err)
	}
	// The view must still read the payload, not the header.
	if got := x.At(0, 0); got != 0 {
		t.Errorf("x[0,0] = %v, want 0", got)
	}
	if got := x.At(5, 3); got != 23 {
		t.Errorf("x[5,3] = %v, want 23", got)
	}
	// Closing the matrix's store must not unmap the dataset.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ds.RawX()[1]; got != 1 {
		t.Errorf("dataset unmapped by view close: %v", got)
	}
}
