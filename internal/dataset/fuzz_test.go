package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseHeader ensures arbitrary header bytes never panic and
// that accepted headers are internally consistent.
func FuzzParseHeader(f *testing.F) {
	f.Add(Header{Rows: 1, Cols: 1}.marshal())
	f.Add(Header{Rows: 1 << 40, Cols: 784, HasLabels: true, Checksum: 7}.marshal())
	f.Add(bytes.Repeat([]byte{0xff}, HeaderSize))
	f.Add([]byte("M3DSET1\n garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := parseHeader(data)
		if err != nil {
			return
		}
		if h.Rows <= 0 || h.Cols <= 0 {
			t.Fatalf("accepted invalid dims %dx%d", h.Rows, h.Cols)
		}
		if h.FileSize() < HeaderSize {
			t.Fatalf("file size %d below header", h.FileSize())
		}
		// Round trip must be stable.
		h2, err := parseHeader(h.marshal())
		if err != nil || h2 != h {
			t.Fatalf("round trip changed header: %+v -> %+v (%v)", h, h2, err)
		}
	})
}

// FuzzParseLibSVMLine ensures arbitrary record text never panics and
// that accepted records have valid indices.
func FuzzParseLibSVMLine(f *testing.F) {
	f.Add("1 1:0.5 3:2")
	f.Add("0")
	f.Add("-1 2:1e300")
	f.Add("x y:z")
	f.Add("1 0:1")
	f.Add("1 :5")
	f.Fuzz(func(t *testing.T, line string) {
		label, feats, err := parseLibSVMLine(line)
		if err != nil {
			return
		}
		_ = label
		for _, fv := range feats {
			if fv.idx < 1 {
				t.Fatalf("accepted index %d", fv.idx)
			}
		}
	})
}

// FuzzOpen ensures arbitrary file contents never panic Open.
func FuzzOpen(f *testing.F) {
	good := Header{Rows: 2, Cols: 2}.marshal()
	good = append(good, make([]byte, 32)...)
	f.Add(good)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{1}, HeaderSize+7))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.m3")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		d, err := Open(path)
		if err != nil {
			return
		}
		// Opened successfully: views must be in bounds.
		if int64(len(d.RawX())) != d.Rows*d.Cols {
			t.Fatalf("payload view %d for %dx%d", len(d.RawX()), d.Rows, d.Cols)
		}
		d.Close()
	})
}
