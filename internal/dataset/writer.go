package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
	"os"
)

// Writer streams a dataset to disk row by row, so arbitrarily large
// files can be produced with constant memory — the tool that builds
// the paper's 190 GB Infimnist file works this way.
type Writer struct {
	f       *os.File
	buf     *bufio.Writer
	hdr     Header
	crc     uint64
	written int64 // rows written
	labels  []float64
	scratch []byte
	closed  bool
}

// Create starts a new dataset file with the given shape. If hasLabels
// is true, each WriteRow must supply a label and the label block is
// appended after the matrix payload at Close.
func Create(path string, rows, cols int64, hasLabels bool) (*Writer, error) {
	hdr := Header{Rows: rows, Cols: cols, HasLabels: hasLabels}
	if err := hdr.Validate(); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		f:       f,
		buf:     bufio.NewWriterSize(f, 1<<20),
		hdr:     hdr,
		scratch: make([]byte, cols*8),
	}
	if hasLabels {
		w.labels = make([]float64, 0, rows)
	}
	// Reserve the header page; the final header (with checksum) is
	// rewritten at Close.
	if _, err := w.buf.Write(hdr.marshal()); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// WriteRow appends one feature row (and its label when the dataset
// has labels; pass 0 otherwise — it is ignored).
func (w *Writer) WriteRow(row []float64, label float64) error {
	if w.closed {
		return fmt.Errorf("dataset: writer closed")
	}
	if int64(len(row)) != w.hdr.Cols {
		return fmt.Errorf("dataset: row of %d values, want %d", len(row), w.hdr.Cols)
	}
	if w.written >= w.hdr.Rows {
		return fmt.Errorf("dataset: too many rows (declared %d)", w.hdr.Rows)
	}
	for i, v := range row {
		binary.LittleEndian.PutUint64(w.scratch[i*8:], math.Float64bits(v))
	}
	if _, err := w.buf.Write(w.scratch); err != nil {
		return err
	}
	w.crc = crc64.Update(w.crc, crcTable, w.scratch)
	if w.hdr.HasLabels {
		w.labels = append(w.labels, label)
	}
	w.written++
	return nil
}

// Close flushes the payload, appends labels, rewrites the header with
// the payload checksum, and closes the file. It fails if fewer rows
// than declared were written.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.written != w.hdr.Rows {
		w.f.Close()
		return fmt.Errorf("dataset: wrote %d of %d declared rows", w.written, w.hdr.Rows)
	}
	if w.hdr.HasLabels {
		lb := make([]byte, 8)
		for _, v := range w.labels {
			binary.LittleEndian.PutUint64(lb, math.Float64bits(v))
			if _, err := w.buf.Write(lb); err != nil {
				w.f.Close()
				return err
			}
			w.crc = crc64.Update(w.crc, crcTable, lb)
		}
	}
	if err := w.buf.Flush(); err != nil {
		w.f.Close()
		return err
	}
	w.hdr.Checksum = w.crc
	if _, err := w.f.WriteAt(w.hdr.marshal(), 0); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// WriteMatrix writes an in-memory row-major matrix (and optional
// labels, which may be nil) in one call.
func WriteMatrix(path string, data []float64, rows, cols int64, labels []float64) error {
	if int64(len(data)) != rows*cols {
		return fmt.Errorf("dataset: data length %d != %d*%d", len(data), rows, cols)
	}
	hasLabels := labels != nil
	if hasLabels && int64(len(labels)) != rows {
		return fmt.Errorf("dataset: %d labels for %d rows", len(labels), rows)
	}
	w, err := Create(path, rows, cols, hasLabels)
	if err != nil {
		return err
	}
	for i := int64(0); i < rows; i++ {
		var label float64
		if hasLabels {
			label = labels[i]
		}
		if err := w.WriteRow(data[i*cols:(i+1)*cols], label); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.Close()
}
