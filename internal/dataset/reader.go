package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"

	"m3/internal/mat"
	"m3/internal/mmap"
	"m3/internal/store"
)

// Dataset is an opened dataset file whose payload is memory-mapped —
// opening a 190 GB file costs one header read and one mmap call, and
// pages materialize only as algorithms touch them.
type Dataset struct {
	Header
	region *mmap.Region
	x      []float64
	labels []float64
	path   string
}

// Open memory-maps a dataset file read-only.
func Open(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdrPage := make([]byte, HeaderSize)
	if _, err := io.ReadFull(f, hdrPage); err != nil {
		return nil, fmt.Errorf("dataset: reading header of %q: %w", path, err)
	}
	hdr, err := parseHeader(hdrPage)
	if err != nil {
		return nil, fmt.Errorf("dataset: %q: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() < hdr.FileSize() {
		return nil, fmt.Errorf("dataset: %q truncated: %d bytes, header implies %d", path, fi.Size(), hdr.FileSize())
	}
	region, err := mmap.Map(f, 0, int(hdr.FileSize()), false)
	if err != nil {
		return nil, err
	}
	all, err := region.Float64()
	if err != nil {
		region.Unmap()
		return nil, err
	}
	headerElems := HeaderSize / 8
	n := hdr.Rows * hdr.Cols
	d := &Dataset{
		Header: hdr,
		region: region,
		x:      all[headerElems : headerElems+int(n)],
		path:   path,
	}
	if hdr.HasLabels {
		d.labels = all[headerElems+int(n) : headerElems+int(n)+int(hdr.Rows)]
	}
	return d, nil
}

// X returns the feature matrix as a view over the mapping, backed by
// a mapped store so the parallel execution layer sees the real
// backend (concurrent-safe accounting, WillNeed block prefetch) —
// not a heap facade.
func (d *Dataset) X() *mat.Dense {
	s := store.ViewMapped(d.region, d.x, HeaderSize)
	m, err := mat.NewDenseStore(s, int(d.Rows), int(d.Cols))
	if err != nil {
		// Unreachable: the view is sized exactly Rows*Cols.
		return mat.NewDenseFrom(d.x, int(d.Rows), int(d.Cols))
	}
	return m
}

// RawX returns the mapped feature payload.
func (d *Dataset) RawX() []float64 { return d.x }

// Labels returns the mapped label vector, or nil if absent.
func (d *Dataset) Labels() []float64 { return d.labels }

// Path returns the file path.
func (d *Dataset) Path() string { return d.path }

// Advise forwards an access-pattern hint for the whole mapping.
func (d *Dataset) Advise(a mmap.Advice) error { return d.region.Advise(a) }

// Region exposes the underlying mapping.
func (d *Dataset) Region() *mmap.Region { return d.region }

// Close unmaps the file.
func (d *Dataset) Close() error {
	d.x, d.labels = nil, nil
	return d.region.Unmap()
}

// ReadAll loads an entire dataset into heap memory — the "Original"
// path of Table 1, feasible only when the data fits in RAM.
func ReadAll(path string) (x []float64, labels []float64, hdr Header, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, Header{}, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	hdrPage := make([]byte, HeaderSize)
	if _, err := io.ReadFull(br, hdrPage); err != nil {
		return nil, nil, Header{}, fmt.Errorf("dataset: reading header: %w", err)
	}
	hdr, err = parseHeader(hdrPage)
	if err != nil {
		return nil, nil, Header{}, err
	}
	x = make([]float64, hdr.Rows*hdr.Cols)
	if err := readFloats(br, x); err != nil {
		return nil, nil, Header{}, fmt.Errorf("dataset: reading payload: %w", err)
	}
	if hdr.HasLabels {
		labels = make([]float64, hdr.Rows)
		if err := readFloats(br, labels); err != nil {
			return nil, nil, Header{}, fmt.Errorf("dataset: reading labels: %w", err)
		}
	}
	return x, labels, hdr, nil
}

func readFloats(r io.Reader, dst []float64) error {
	buf := make([]byte, 1<<16)
	for len(dst) > 0 {
		n := len(buf) / 8
		if n > len(dst) {
			n = len(dst)
		}
		if _, err := io.ReadFull(r, buf[:n*8]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		dst = dst[n:]
	}
	return nil
}

// Verify recomputes the payload checksum of an open dataset and
// compares it to the recorded one. A zero recorded checksum verifies
// trivially.
func (d *Dataset) Verify() error {
	if d.Checksum == 0 {
		return nil
	}
	crc := crcFloats(0, d.x)
	if d.HasLabels {
		crc = crcFloats(crc, d.labels)
	}
	if crc != d.Checksum {
		return fmt.Errorf("dataset: checksum mismatch: file records %#x, payload hashes to %#x", d.Checksum, crc)
	}
	return nil
}

func crcFloats(seed uint64, fs []float64) uint64 {
	buf := make([]byte, 8)
	crc := seed
	for _, v := range fs {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		crc = crc64.Update(crc, crcTable, buf)
	}
	return crc
}
