// Package dataset defines the on-disk format M3 datasets use and
// streaming reader/writer implementations.
//
// Layout of a .m3 file:
//
//	offset 0      header page (4096 bytes, little-endian):
//	               [0:8)   magic "M3DSET1\n"
//	               [8:12)  format version (uint32, currently 1)
//	               [12:16) flags (uint32; bit 0 = labels present)
//	               [16:24) rows (int64)
//	               [24:32) cols (int64)
//	               [32:40) CRC64/ECMA of the payload (uint64; 0 = unset)
//	               rest    zero padding
//	offset 4096   X payload: rows*cols float64, row-major
//	then          labels: rows float64 (only if flag bit 0)
//
// The header occupies exactly one page so the payload begins
// page-aligned: a Dataset can therefore be memory-mapped and handed
// to algorithms without any copying or parsing — the property M3
// depends on.
package dataset

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
)

// Magic identifies an M3 dataset file.
const Magic = "M3DSET1\n"

// HeaderSize is the page-aligned header length in bytes.
const HeaderSize = 4096

// Version is the current format version.
const Version = 1

// flag bits
const flagLabels = 1 << 0

var crcTable = crc64.MakeTable(crc64.ECMA)

// Header describes a dataset file.
type Header struct {
	Rows      int64
	Cols      int64
	HasLabels bool
	// Checksum is the CRC64/ECMA of the payload (X then labels);
	// zero means the writer did not record one.
	Checksum uint64
}

// DataBytes returns the X payload size in bytes.
func (h Header) DataBytes() int64 { return h.Rows * h.Cols * 8 }

// LabelBytes returns the label payload size in bytes.
func (h Header) LabelBytes() int64 {
	if !h.HasLabels {
		return 0
	}
	return h.Rows * 8
}

// FileSize returns the total file size implied by the header.
func (h Header) FileSize() int64 { return HeaderSize + h.DataBytes() + h.LabelBytes() }

// Validate checks internal consistency.
func (h Header) Validate() error {
	if h.Rows <= 0 || h.Cols <= 0 {
		return fmt.Errorf("dataset: non-positive dimensions %dx%d", h.Rows, h.Cols)
	}
	if h.Rows > math.MaxInt64/8/h.Cols {
		return fmt.Errorf("dataset: %dx%d overflows", h.Rows, h.Cols)
	}
	return nil
}

// marshal encodes the header into a HeaderSize-byte page.
func (h Header) marshal() []byte {
	b := make([]byte, HeaderSize)
	copy(b, Magic)
	binary.LittleEndian.PutUint32(b[8:], Version)
	var flags uint32
	if h.HasLabels {
		flags |= flagLabels
	}
	binary.LittleEndian.PutUint32(b[12:], flags)
	binary.LittleEndian.PutUint64(b[16:], uint64(h.Rows))
	binary.LittleEndian.PutUint64(b[24:], uint64(h.Cols))
	binary.LittleEndian.PutUint64(b[32:], h.Checksum)
	return b
}

// parseHeader decodes and validates a header page.
func parseHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("dataset: truncated header (%d bytes)", len(b))
	}
	if string(b[:8]) != Magic {
		return Header{}, fmt.Errorf("dataset: bad magic %q", b[:8])
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != Version {
		return Header{}, fmt.Errorf("dataset: unsupported version %d", v)
	}
	flags := binary.LittleEndian.Uint32(b[12:])
	h := Header{
		Rows:      int64(binary.LittleEndian.Uint64(b[16:])),
		Cols:      int64(binary.LittleEndian.Uint64(b[24:])),
		HasLabels: flags&flagLabels != 0,
		Checksum:  binary.LittleEndian.Uint64(b[32:]),
	}
	if err := h.Validate(); err != nil {
		return Header{}, err
	}
	return h, nil
}
