package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestImportLibSVM(t *testing.T) {
	svm := filepath.Join(t.TempDir(), "in.svm")
	content := "1 1:0.5 3:2\n0 2:1.5\n# comment line\n\n1 1:-1 2:0.25 3:7\n"
	if err := os.WriteFile(svm, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "out.m3")
	if err := ImportLibSVM(svm, out); err != nil {
		t.Fatal(err)
	}
	d, err := Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Rows != 3 || d.Cols != 3 || !d.HasLabels {
		t.Fatalf("header %+v", d.Header)
	}
	wantX := []float64{0.5, 0, 2, 0, 1.5, 0, -1, 0.25, 7}
	for i, v := range wantX {
		if d.RawX()[i] != v {
			t.Errorf("x[%d] = %v want %v", i, d.RawX()[i], v)
		}
	}
	wantY := []float64{1, 0, 1}
	for i, v := range wantY {
		if d.Labels()[i] != v {
			t.Errorf("y[%d] = %v want %v", i, d.Labels()[i], v)
		}
	}
}

func TestImportLibSVMErrors(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"empty":     "",
		"nofeat":    "1\n0\n",
		"badlabel":  "abc 1:2\n",
		"badidx":    "1 0:2\n",
		"badval":    "1 1:xyz\n",
		"colonless": "1 12\n",
	}
	for name, content := range cases {
		p := filepath.Join(dir, name+".svm")
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := ImportLibSVM(p, filepath.Join(dir, name+".m3")); err == nil {
			t.Errorf("%s: import succeeded on invalid input", name)
		}
	}
}

func TestExportLibSVMRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.m3")
	data := []float64{1, 0, 2, 0, 0, 3}
	labels := []float64{1, 0}
	if err := WriteMatrix(path, data, 2, 3, labels); err != nil {
		t.Fatal(err)
	}
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var buf bytes.Buffer
	if err := d.ExportLibSVM(&buf); err != nil {
		t.Fatal(err)
	}
	want := "1 1:1 3:2\n0 3:3\n"
	if got := buf.String(); got != want {
		t.Errorf("export = %q want %q", got, want)
	}

	// Re-import lands on the same dense content.
	svm := filepath.Join(t.TempDir(), "rt.svm")
	if err := os.WriteFile(svm, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(t.TempDir(), "back.m3")
	if err := ImportLibSVM(svm, back); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(back)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for i, v := range data {
		if d2.RawX()[i] != v {
			t.Errorf("roundtrip x[%d] = %v want %v", i, d2.RawX()[i], v)
		}
	}
}

func TestExportLibSVMNoLabels(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nl.m3")
	if err := WriteMatrix(path, []float64{5}, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var buf bytes.Buffer
	if err := d.ExportLibSVM(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "0 1:5") {
		t.Errorf("export = %q", buf.String())
	}
}
