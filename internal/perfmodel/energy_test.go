package perfmodel

import (
	"math"
	"testing"
)

func TestPowerModelValidate(t *testing.T) {
	if err := DesktopPower().Validate(); err != nil {
		t.Errorf("DesktopPower invalid: %v", err)
	}
	if err := ServerPower().Validate(); err != nil {
		t.Errorf("ServerPower invalid: %v", err)
	}
	if err := (PowerModel{}).Validate(); err == nil {
		t.Error("accepted all-zero model")
	}
	if err := (PowerModel{IdleWatts: -1}).Validate(); err == nil {
		t.Error("accepted negative watts")
	}
}

func TestEnergyJoules(t *testing.T) {
	p := PowerModel{IdleWatts: 10, CPUActiveWatts: 100, DiskActiveWatts: 5}
	// 100 s elapsed, 50 s CPU busy, 100 s disk busy:
	// 10*100 + 100*50 + 5*100 = 6500 J.
	if got := p.EnergyJoules(100, 50, 100); math.Abs(got-6500) > 1e-9 {
		t.Errorf("energy = %v want 6500", got)
	}
	if got := p.EnergyJoules(-1, 0, 0); got != 0 {
		t.Errorf("negative elapsed energy = %v", got)
	}
}

func TestEnergyKWh(t *testing.T) {
	p := PowerModel{IdleWatts: 1000}
	// 1 kW for 3600 s = 1 kWh.
	if got := p.EnergyKWh(3600, 0, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("kWh = %v want 1", got)
	}
}

func TestClusterEnergyScalesWithInstances(t *testing.T) {
	p := ServerPower()
	e4 := ClusterEnergyJoules(p, 4, 1000, 0.5, 0.2)
	e8 := ClusterEnergyJoules(p, 8, 1000, 0.5, 0.2)
	if math.Abs(e8-2*e4) > 1e-9 {
		t.Errorf("8 instances (%v J) != 2x 4 instances (%v J)", e8, e4)
	}
	if got := ClusterEnergyJoules(p, 0, 100, 1, 1); got != 0 {
		t.Errorf("0 instances energy = %v", got)
	}
}

// The paper-scale energy comparison: even when an 8-instance cluster
// approaches M3's runtime, it burns far more energy because eight
// servers idle-draw for the whole job.
func TestM3EnergyAdvantage(t *testing.T) {
	// Figure 1b logreg numbers (measured by this repo's harness):
	// M3 1741 s at disk 100%/CPU 13%; Spark x8 2715 s at roughly
	// 60% CPU (mixed scan/compute), 30% disk.
	m3Energy := DesktopPower().EnergyJoules(1741, 0.13*1741, 1.0*1741)
	sparkEnergy := ClusterEnergyJoules(ServerPower(), 8, 2715, 0.6, 0.3)
	if ratio := sparkEnergy / m3Energy; ratio < 5 {
		t.Errorf("cluster/M3 energy ratio = %.1f, expected a large gap", ratio)
	}
}
