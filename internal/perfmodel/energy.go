package perfmodel

import "fmt"

// PowerModel converts utilization profiles into energy estimates —
// the second half of the paper's §4 goal to "profile and predict
// algorithm performance and energy usage". Energy is integrated as
//
//	J = IdleWatts·elapsed + CPUActiveWatts·cpuBusy + DiskActiveWatts·diskBusy
//
// i.e. a baseline platform draw plus activity-proportional deltas,
// the standard first-order server power model.
type PowerModel struct {
	// IdleWatts is the platform draw when powered but idle.
	IdleWatts float64
	// CPUActiveWatts is the additional draw at full CPU load.
	CPUActiveWatts float64
	// DiskActiveWatts is the additional draw while storage is busy.
	DiskActiveWatts float64
}

// Validate reports whether the model is usable.
func (p PowerModel) Validate() error {
	if p.IdleWatts < 0 || p.CPUActiveWatts < 0 || p.DiskActiveWatts < 0 {
		return fmt.Errorf("perfmodel: negative power")
	}
	if p.IdleWatts == 0 && p.CPUActiveWatts == 0 && p.DiskActiveWatts == 0 {
		return fmt.Errorf("perfmodel: all-zero power model")
	}
	return nil
}

// DesktopPower models the paper's i7-4770K desktop: ~45 W idle,
// +84 W CPU package at full load (the 4770K's TDP), +10 W for a PCIe
// SSD under sustained reads.
func DesktopPower() PowerModel {
	return PowerModel{IdleWatts: 45, CPUActiveWatts: 84, DiskActiveWatts: 10}
}

// ServerPower models one cloud worker (m3.2xlarge-class share of a
// Xeon host): higher idle draw, similar active deltas.
func ServerPower() PowerModel {
	return PowerModel{IdleWatts: 120, CPUActiveWatts: 95, DiskActiveWatts: 12}
}

// EnergyJoules integrates the model over a phase described by
// elapsed wall-clock seconds and per-resource busy seconds.
func (p PowerModel) EnergyJoules(elapsedSec, cpuBusySec, diskBusySec float64) float64 {
	if elapsedSec < 0 {
		return 0
	}
	return p.IdleWatts*elapsedSec + p.CPUActiveWatts*cpuBusySec + p.DiskActiveWatts*diskBusySec
}

// EnergyKWh converts EnergyJoules to kilowatt-hours.
func (p PowerModel) EnergyKWh(elapsedSec, cpuBusySec, diskBusySec float64) float64 {
	return p.EnergyJoules(elapsedSec, cpuBusySec, diskBusySec) / 3.6e6
}

// ClusterEnergyJoules scales a per-instance model across n workers
// that are all powered for the full job duration (the cluster bills
// and burns idle instances too — a structural energy disadvantage of
// scale-out for I/O-light iterative jobs).
func ClusterEnergyJoules(p PowerModel, instances int, elapsedSec, cpuBusyFrac, diskBusyFrac float64) float64 {
	if instances < 1 {
		return 0
	}
	perInstance := p.EnergyJoules(elapsedSec, cpuBusyFrac*elapsedSec, diskBusyFrac*elapsedSec)
	return float64(instances) * perInstance
}
