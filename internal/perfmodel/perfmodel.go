// Package perfmodel fits and evaluates the piecewise-linear runtime
// model behind Figure 1a: runtime grows linearly with dataset size in
// two regimes — a shallow slope while the data fits in RAM and a
// steeper slope once paging begins — with the knee at the machine's
// RAM size. It also implements the paper's §4 "ongoing work" goal of
// predicting runtime at unseen scales from a fitted model.
package perfmodel

import (
	"fmt"
	"math"
	"sort"
)

// Point is one (dataset size, runtime) measurement.
type Point struct {
	// SizeBytes is the dataset size.
	SizeBytes float64
	// Seconds is the measured runtime.
	Seconds float64
}

// Segment is one linear regime: Seconds ≈ Intercept + Slope×SizeBytes.
type Segment struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
	// N is the number of points in the segment.
	N int
}

// Eval returns the modelled runtime at size.
func (s Segment) Eval(size float64) float64 { return s.Intercept + s.Slope*size }

// Model is the two-regime piecewise-linear runtime model.
type Model struct {
	// KneeBytes separates the in-RAM and out-of-core regimes.
	KneeBytes float64
	// InRAM covers sizes <= KneeBytes.
	InRAM Segment
	// OutOfCore covers sizes > KneeBytes.
	OutOfCore Segment
}

// SlopeRatio is out-of-core slope / in-RAM slope — how much paging
// costs per byte. Returns +Inf when the in-RAM slope is zero.
func (m Model) SlopeRatio() float64 {
	if m.InRAM.Slope == 0 {
		return math.Inf(1)
	}
	return m.OutOfCore.Slope / m.InRAM.Slope
}

// Predict returns the modelled runtime at size, selecting the regime
// by the knee.
func (m Model) Predict(size float64) float64 {
	if size <= m.KneeBytes {
		return m.InRAM.Eval(size)
	}
	return m.OutOfCore.Eval(size)
}

// String summarizes the model.
func (m Model) String() string {
	return fmt.Sprintf("knee %.1f GB; in-RAM %.3g s/GB (R²=%.4f); out-of-core %.3g s/GB (R²=%.4f); slope ratio %.2f",
		m.KneeBytes/1e9, m.InRAM.Slope*1e9, m.InRAM.R2, m.OutOfCore.Slope*1e9, m.OutOfCore.R2, m.SlopeRatio())
}

// fitLine computes ordinary least squares over the points.
func fitLine(pts []Point) Segment {
	n := float64(len(pts))
	if len(pts) == 0 {
		return Segment{}
	}
	if len(pts) == 1 {
		return Segment{Intercept: pts[0].Seconds, R2: 1, N: 1}
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.SizeBytes
		sy += p.Seconds
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for _, p := range pts {
		dx, dy := p.SizeBytes-mx, p.Seconds-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	seg := Segment{N: len(pts)}
	if sxx == 0 {
		seg.Intercept = my
		seg.R2 = 1
		return seg
	}
	seg.Slope = sxy / sxx
	seg.Intercept = my - seg.Slope*mx
	if syy == 0 {
		seg.R2 = 1
	} else {
		ssRes := syy - seg.Slope*sxy
		seg.R2 = 1 - ssRes/syy
	}
	return seg
}

// Fit builds the two-regime model with a known knee (e.g. the
// machine's RAM size, 32 GB in the paper). Points at the knee belong
// to the in-RAM regime. It requires at least one point per regime.
func Fit(points []Point, kneeBytes float64) (Model, error) {
	if kneeBytes <= 0 {
		return Model{}, fmt.Errorf("perfmodel: non-positive knee %v", kneeBytes)
	}
	var lo, hi []Point
	for _, p := range points {
		if p.SizeBytes <= kneeBytes {
			lo = append(lo, p)
		} else {
			hi = append(hi, p)
		}
	}
	if len(lo) == 0 || len(hi) == 0 {
		return Model{}, fmt.Errorf("perfmodel: need points on both sides of the knee (%d in-RAM, %d out-of-core)", len(lo), len(hi))
	}
	return Model{KneeBytes: kneeBytes, InRAM: fitLine(lo), OutOfCore: fitLine(hi)}, nil
}

// FitAutoKnee searches candidate knees (midpoints between consecutive
// sizes) for the split minimizing total squared error — recovering
// the effective RAM size from runtime measurements alone.
func FitAutoKnee(points []Point) (Model, error) {
	if len(points) < 4 {
		return Model{}, fmt.Errorf("perfmodel: need >= 4 points, got %d", len(points))
	}
	pts := append([]Point(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].SizeBytes < pts[j].SizeBytes })

	best := Model{}
	bestSSE := math.Inf(1)
	found := false
	for i := 1; i+1 < len(pts); i++ {
		knee := (pts[i].SizeBytes + pts[i+1].SizeBytes) / 2
		m, err := Fit(pts, knee)
		if err != nil {
			continue
		}
		var sse float64
		for _, p := range pts {
			d := p.Seconds - m.Predict(p.SizeBytes)
			sse += d * d
		}
		if sse < bestSSE {
			bestSSE, best, found = sse, m, true
		}
	}
	if !found {
		return Model{}, fmt.Errorf("perfmodel: no valid knee split")
	}
	return best, nil
}

// Linearity verifies the paper's claim on a measurement series: both
// regimes fit a line with R² at least minR2.
func Linearity(points []Point, kneeBytes, minR2 float64) error {
	m, err := Fit(points, kneeBytes)
	if err != nil {
		return err
	}
	if m.InRAM.N >= 3 && m.InRAM.R2 < minR2 {
		return fmt.Errorf("perfmodel: in-RAM regime R² = %.4f < %.4f", m.InRAM.R2, minR2)
	}
	if m.OutOfCore.N >= 3 && m.OutOfCore.R2 < minR2 {
		return fmt.Errorf("perfmodel: out-of-core regime R² = %.4f < %.4f", m.OutOfCore.R2, minR2)
	}
	return nil
}
