package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// synth builds an exact two-slope series with the given knee.
func synth(knee, slopeLo, slopeHi float64, sizes []float64) []Point {
	// Continuous at the knee: hi intercept chosen so lines meet.
	pts := make([]Point, len(sizes))
	kneeVal := slopeLo * knee
	for i, s := range sizes {
		var sec float64
		if s <= knee {
			sec = slopeLo * s
		} else {
			sec = kneeVal + slopeHi*(s-knee)
		}
		pts[i] = Point{SizeBytes: s, Seconds: sec}
	}
	return pts
}

func paperSizes() []float64 {
	return []float64{10e9, 20e9, 30e9, 40e9, 70e9, 100e9, 130e9, 160e9, 190e9}
}

func TestFitRecoversSlopes(t *testing.T) {
	const knee = 32e9
	pts := synth(knee, 1e-9, 8e-9, paperSizes())
	m, err := Fit(pts, knee)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.InRAM.Slope-1e-9) > 1e-15 {
		t.Errorf("in-RAM slope = %v", m.InRAM.Slope)
	}
	if math.Abs(m.OutOfCore.Slope-8e-9) > 1e-15 {
		t.Errorf("out-of-core slope = %v", m.OutOfCore.Slope)
	}
	if m.InRAM.R2 < 0.9999 || m.OutOfCore.R2 < 0.9999 {
		t.Errorf("R² = %v, %v", m.InRAM.R2, m.OutOfCore.R2)
	}
	if r := m.SlopeRatio(); math.Abs(r-8) > 1e-6 {
		t.Errorf("slope ratio = %v want 8", r)
	}
}

func TestFitValidation(t *testing.T) {
	pts := synth(32e9, 1e-9, 8e-9, paperSizes())
	if _, err := Fit(pts, 0); err == nil {
		t.Error("accepted zero knee")
	}
	if _, err := Fit(pts[:2], 32e9); err == nil {
		t.Error("accepted points on one side only")
	}
}

func TestPredictSelectsRegime(t *testing.T) {
	const knee = 32e9
	pts := synth(knee, 1e-9, 8e-9, paperSizes())
	m, err := Fit(pts, knee)
	if err != nil {
		t.Fatal(err)
	}
	// In-RAM prediction.
	if got, want := m.Predict(20e9), 20.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("Predict(20GB) = %v want %v", got, want)
	}
	// Out-of-core prediction at unseen 250 GB.
	want := 32.0 + 8*(250-32) // seconds with slopes in s/GB
	if got := m.Predict(250e9); math.Abs(got-want) > 1e-6 {
		t.Errorf("Predict(250GB) = %v want %v", got, want)
	}
}

func TestFitAutoKneeFindsRAMSize(t *testing.T) {
	const knee = 32e9
	pts := synth(knee, 1e-9, 8e-9, paperSizes())
	m, err := FitAutoKnee(pts)
	if err != nil {
		t.Fatal(err)
	}
	// The detected knee must fall between the last in-RAM point
	// (30 GB) and the first out-of-core one (40 GB).
	if m.KneeBytes < 30e9 || m.KneeBytes > 40e9 {
		t.Errorf("auto knee = %v GB", m.KneeBytes/1e9)
	}
	if _, err := FitAutoKnee(pts[:3]); err == nil {
		t.Error("accepted 3 points")
	}
}

func TestLinearity(t *testing.T) {
	pts := synth(32e9, 1e-9, 8e-9, paperSizes())
	if err := Linearity(pts, 32e9, 0.99); err != nil {
		t.Errorf("exact series failed linearity: %v", err)
	}
	// Corrupt the out-of-core regime heavily.
	bad := append([]Point(nil), pts...)
	bad[len(bad)-1].Seconds *= 10
	bad[len(bad)-2].Seconds *= 0.05
	if err := Linearity(bad, 32e9, 0.99); err == nil {
		t.Error("linearity passed on corrupted series")
	}
}

func TestFitLineDegenerate(t *testing.T) {
	// Single point and vertical stack must not divide by zero.
	seg := fitLine([]Point{{SizeBytes: 5, Seconds: 7}})
	if seg.Intercept != 7 || seg.Slope != 0 {
		t.Errorf("single point fit = %+v", seg)
	}
	seg = fitLine([]Point{{5, 7}, {5, 9}})
	if math.IsNaN(seg.Intercept) || math.IsNaN(seg.Slope) {
		t.Errorf("vertical stack fit = %+v", seg)
	}
	if seg.Intercept != 8 {
		t.Errorf("vertical stack intercept = %v want mean 8", seg.Intercept)
	}
	if got := fitLine(nil); got.N != 0 {
		t.Errorf("empty fit = %+v", got)
	}
}

func TestStringContainsKnee(t *testing.T) {
	pts := synth(32e9, 1e-9, 8e-9, paperSizes())
	m, _ := Fit(pts, 32e9)
	if s := m.String(); len(s) == 0 {
		t.Error("empty String")
	}
}

// Property: for any positive two-slope synthetic series, Fit recovers
// slopes within floating-point tolerance and Predict interpolates the
// training points exactly.
func TestPropertyFitExactOnSynthetic(t *testing.T) {
	f := func(loRaw, hiRaw uint8) bool {
		lo := (float64(loRaw%50) + 1) * 1e-10
		hi := lo * (2 + float64(hiRaw%10))
		pts := synth(32e9, lo, hi, paperSizes())
		m, err := Fit(pts, 32e9)
		if err != nil {
			return false
		}
		for _, p := range pts {
			if math.Abs(m.Predict(p.SizeBytes)-p.Seconds) > 1e-6*math.Max(1, p.Seconds) {
				return false
			}
		}
		return m.SlopeRatio() > 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
