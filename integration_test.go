package m3

// Integration tests: end-to-end flows crossing module boundaries,
// exercising the public API exactly the way the examples and a
// downstream user would.

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"m3/internal/dataset"
	"m3/internal/iostats"
)

func TestIntegrationGenerateTrainEvaluate(t *testing.T) {
	// Full pipeline: generate → map → train all four learners →
	// evaluate on a held-out mapped dataset.
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.m3")
	testPath := filepath.Join(dir, "test.m3")
	if err := GenerateInfimnist(trainPath, 400, 1); err != nil {
		t.Fatal(err)
	}
	if err := GenerateInfimnist(testPath, 200, 2); err != nil {
		t.Fatal(err)
	}

	eng := New(Config{Mode: MemoryMapped})
	defer eng.Close()
	trainTbl, err := eng.Open(trainPath)
	if err != nil {
		t.Fatal(err)
	}
	testTbl, err := eng.Open(testPath)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	binary := func(labels []float64) []float64 {
		y := make([]float64, len(labels))
		for i, v := range labels {
			if v == 0 {
				y[i] = 1
			}
		}
		return y
	}
	yTest := binary(testTbl.Labels)

	// L-BFGS logistic regression.
	lrModel, err := eng.Fit(ctx, LogisticRegression{
		Binarize: true, Positive: 0,
		Options: LogisticOptions{MaxIterations: 20},
	}, trainTbl)
	if err != nil {
		t.Fatal(err)
	}
	lr := lrModel.(*FittedLogistic)
	if acc := lr.Accuracy(testTbl.X, yTest); acc < 0.95 {
		t.Errorf("logreg test accuracy = %v", acc)
	}

	// Explicit 4-worker pool reaches the same quality.
	lrpModel, err := eng.Fit(ctx, LogisticRegression{
		Binarize: true, Positive: 0,
		Options: LogisticOptions{FitOptions: FitOptions{Workers: 4}, MaxIterations: 20},
	}, trainTbl)
	if err != nil {
		t.Fatal(err)
	}
	if acc := lrpModel.(*FittedLogistic).Accuracy(testTbl.X, yTest); acc < 0.95 {
		t.Errorf("parallel logreg test accuracy = %v", acc)
	}

	// SGD.
	sgdModel, err := eng.Fit(ctx, SGDClassifier{
		Binarize: true, Positive: 0,
		Options: SGDOptions{Epochs: 3},
	}, trainTbl)
	if err != nil {
		t.Fatal(err)
	}
	if acc := sgdModel.(*FittedLogistic).Accuracy(testTbl.X, yTest); acc < 0.9 {
		t.Errorf("sgd test accuracy = %v", acc)
	}

	// Softmax multiclass.
	smModel, err := eng.Fit(ctx, SoftmaxRegression{
		Classes: 10, Options: LogisticOptions{MaxIterations: 25},
	}, trainTbl)
	if err != nil {
		t.Fatal(err)
	}
	yMultiTest := make([]int, len(testTbl.Labels))
	for i, v := range testTbl.Labels {
		yMultiTest[i] = int(v)
	}
	if acc := smModel.(*FittedSoftmax).Accuracy(testTbl.X, yMultiTest); acc < 0.75 {
		t.Errorf("softmax test accuracy = %v", acc)
	}

	// K-means over the same mapped matrix.
	kmModel, err := eng.Fit(ctx, KMeansClustering{
		Options: KMeansOptions{K: 10, MaxIterations: 10, Seed: 5},
	}, trainTbl)
	if err != nil {
		t.Fatal(err)
	}
	km := kmModel.(*FittedKMeans)
	if km.Inertia <= 0 || len(km.Assignments) != 400 {
		t.Errorf("kmeans result: inertia %v, %d assignments", km.Inertia, len(km.Assignments))
	}
}

func TestIntegrationLinearRegressionOnMappedScratch(t *testing.T) {
	// Engine-managed scratch allocation (the paper's mmapAlloc) used
	// as a real training target.
	eng := New(Config{TempDir: t.TempDir()})
	defer eng.Close()
	const n, d = 500, 3
	x, err := eng.Alloc(n, d)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, n)
	r := uint64(5)
	next := func() float64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return float64(r%2000)/1000 - 1
	}
	for i := 0; i < n; i++ {
		a, b, c := next(), next(), next()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		x.Set(i, 2, c)
		y[i] = 2*a - b + 0.5*c + 4
	}
	lmModel, err := Fit(context.Background(), LinearRegression{}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	lm := lmModel.(*FittedLinear)
	want := []float64{2, -1, 0.5}
	for i, wv := range want {
		if math.Abs(lm.Weights[i]-wv) > 1e-3 {
			t.Errorf("weight %d = %v want %v", i, lm.Weights[i], wv)
		}
	}
	if math.Abs(lm.Intercept-4) > 1e-3 {
		t.Errorf("intercept = %v", lm.Intercept)
	}
	exModel, err := Fit(context.Background(), LinearRegression{Exact: true}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	ex := exModel.(*FittedLinear)
	for i := range ex.Weights {
		if math.Abs(ex.Weights[i]-lm.Weights[i]) > 1e-4 {
			t.Errorf("exact vs lbfgs weight %d: %v vs %v", i, ex.Weights[i], lm.Weights[i])
		}
	}
}

func TestIntegrationFormatConversions(t *testing.T) {
	// m3 → csv → m3 and m3 → libsvm → m3 preserve content.
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig.m3")
	if err := GenerateInfimnist(orig, 20, 6); err != nil {
		t.Fatal(err)
	}
	d, err := dataset.Open(orig)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	csvPath := filepath.Join(dir, "x.csv")
	cf, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ExportCSV(cf); err != nil {
		t.Fatal(err)
	}
	cf.Close()
	back := filepath.Join(dir, "back.m3")
	if err := dataset.ImportCSV(csvPath, back, true); err != nil {
		t.Fatal(err)
	}
	d2, err := dataset.Open(back)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Rows != d.Rows || d2.Cols != d.Cols {
		t.Fatalf("csv roundtrip shape %dx%d vs %dx%d", d2.Rows, d2.Cols, d.Rows, d.Cols)
	}
	for i := range d.RawX() {
		if d.RawX()[i] != d2.RawX()[i] {
			t.Fatalf("csv roundtrip value %d differs", i)
		}
	}

	svmPath := filepath.Join(dir, "x.svm")
	sf, err := os.Create(svmPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ExportLibSVM(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	back2 := filepath.Join(dir, "back2.m3")
	if err := dataset.ImportLibSVM(svmPath, back2); err != nil {
		t.Fatal(err)
	}
	d3, err := dataset.Open(back2)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if d3.Rows != d.Rows {
		t.Fatalf("libsvm roundtrip rows %d vs %d", d3.Rows, d.Rows)
	}
	// libsvm drops trailing all-zero columns; compare the overlap.
	cols := int(d3.Cols)
	for i := int64(0); i < d.Rows; i++ {
		for j := 0; j < cols; j++ {
			if d.RawX()[int(i)*784+j] != d3.RawX()[int(i)*cols+j] {
				t.Fatalf("libsvm roundtrip (%d,%d) differs", i, j)
			}
		}
	}
}

func TestIntegrationSaveLoadModel(t *testing.T) {
	dir := t.TempDir()
	dsPath := filepath.Join(dir, "d.m3")
	if err := GenerateInfimnist(dsPath, 120, 9); err != nil {
		t.Fatal(err)
	}
	eng := New(Config{Mode: MemoryMapped})
	defer eng.Close()
	tbl, err := eng.Open(dsPath)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, len(tbl.Labels))
	for i, v := range tbl.Labels {
		if v == 0 {
			y[i] = 1
		}
	}
	fitted, err := eng.Fit(context.Background(), LogisticRegression{
		Binarize: true, Positive: 0,
		Options: LogisticOptions{MaxIterations: 10},
	}, tbl)
	if err != nil {
		t.Fatal(err)
	}
	model := fitted.(*FittedLogistic)
	modelPath := filepath.Join(dir, "lr.model")
	if err := model.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	loaded, kind, err := LoadModel(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "logistic" {
		t.Errorf("kind = %v", kind)
	}
	lm := loaded.(*LogisticModel)
	if lm.Accuracy(tbl.X, y) != model.Accuracy(tbl.X, y) {
		t.Error("loaded model disagrees with original")
	}

	// m3.Load returns the same model behind the fitted wrapper, plus
	// the header metadata.
	wrapped, info, err := Load(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "logistic" || info.InputCols != tbl.X.Cols() || info.Classes != 2 {
		t.Errorf("Load info = %+v", info)
	}
	wp, err := wrapped.PredictMatrix(tbl.X)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := model.PredictMatrix(tbl.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wp {
		if wp[i] != mp[i] {
			t.Fatalf("Load-ed model prediction %d differs", i)
		}
	}
}

func TestIntegrationResidencyGrowsWithTraining(t *testing.T) {
	// Real OS behaviour: after training scans the mapping, most of
	// it is resident (mincore), and /proc sees the work.
	dir := t.TempDir()
	path := filepath.Join(dir, "d.m3")
	if err := GenerateInfimnist(path, 300, 3); err != nil {
		t.Fatal(err)
	}
	eng := New(Config{Mode: MemoryMapped})
	defer eng.Close()
	tbl, err := eng.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	before, berr := iostats.ReadProc()
	if _, err := eng.Fit(context.Background(), LogisticRegression{
		Binarize: true, Positive: 0,
		Options: LogisticOptions{MaxIterations: 5},
	}, tbl); err != nil {
		t.Fatal(err)
	}
	st := tbl.X.Store().Stats()
	if st.BytesTouched == 0 {
		t.Error("no bytes accounted during training")
	}
	if st.ResidentBytes <= 0 {
		t.Error("mapping not resident after training scans")
	}
	if berr == nil {
		after, err := iostats.ReadProc()
		if err == nil {
			d := after.Sub(before)
			if d.UserSeconds < 0 {
				t.Errorf("negative cpu delta: %+v", d)
			}
		}
	}
}
