package m3

// Estimator API v2 tests: the cross-backend parity suite (every
// estimator yields bit-identical models on heap, memory-mapped and
// Auto tables) and the cancellation contract (Fit returns ctx.Err()
// promptly, within one block or iteration). The cancellation tests
// run under -race in CI.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// estimatorCase is one algorithm configured for the shared digits
// dataset (200 Infimnist images, labels 0–9).
type estimatorCase struct {
	name     string
	est      Estimator
	savable  bool // k-NN has no serial form
	iterates bool // supports mid-fit cancellation via callback
}

func estimatorCases(extra FitOptions) []estimatorCase {
	lrOpts := LogisticOptions{FitOptions: extra, MaxIterations: 8}
	return []estimatorCase{
		{"logreg", LogisticRegression{Binarize: true, Positive: 0, Options: lrOpts}, true, true},
		{"softmax", SoftmaxRegression{Classes: 10, Options: LogisticOptions{FitOptions: extra, MaxIterations: 4}}, true, true},
		{"linreg", LinearRegression{Options: LinearOptions{FitOptions: extra, MaxIterations: 6}}, true, true},
		{"linreg-exact", LinearRegression{Exact: true, Options: LinearOptions{FitOptions: extra}}, true, false},
		{"kmeans", KMeansClustering{Options: KMeansOptions{FitOptions: extra, K: 4, MaxIterations: 5, Seed: 3, RunAllIterations: true}}, true, true},
		{"minibatch-kmeans", MiniBatchClustering{Options: MiniBatchKMeansOptions{FitOptions: extra, K: 4, Steps: 40, BatchSize: 32, Seed: 3}}, true, true},
		{"knn", KNNClassifier{K: 3, Classes: 10, Options: KNNOptions{FitOptions: extra}}, false, false},
		{"sgd", SGDClassifier{Binarize: true, Positive: 0, Options: SGDOptions{FitOptions: extra, Epochs: 2}}, true, true},
		{"bayes", NaiveBayes{Classes: 10, Options: BayesOptions{FitOptions: extra}}, true, false},
		{"pca", PrincipalComponents{Options: PCAOptions{FitOptions: extra, Components: 3, Seed: 1}}, true, false},
	}
}

// digitsFile writes the shared test dataset once per test.
func digitsFile(t *testing.T, n int64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "digits.m3")
	if err := GenerateInfimnist(path, n, 7); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestEstimatorBackendParity is the acceptance test of the estimator
// redesign: one loop over every shipped algorithm, fitted through the
// single Engine.Fit entry point on all three storage backends, must
// produce bit-identical predictions and (where supported) identical
// serialized models.
func TestEstimatorBackendParity(t *testing.T) {
	path := digitsFile(t, 200)
	backends := []struct {
		name string
		mode Mode
	}{
		{"heap", InMemory},
		{"mmap", MemoryMapped},
		{"auto", Auto},
	}

	for _, tc := range estimatorCases(FitOptions{}) {
		t.Run(tc.name, func(t *testing.T) {
			var refPreds []float64
			var refSaved []byte
			for _, b := range backends {
				eng := New(Config{Mode: b.mode})
				tbl, err := eng.Open(path)
				if err != nil {
					eng.Close()
					t.Fatal(err)
				}
				model, err := eng.Fit(context.Background(), tc.est, tbl)
				if err != nil {
					eng.Close()
					t.Fatalf("%s: %v", b.name, err)
				}
				preds, err := model.PredictMatrix(tbl.X)
				if err != nil {
					eng.Close()
					t.Fatalf("%s: PredictMatrix: %v", b.name, err)
				}
				var saved []byte
				if tc.savable {
					mp := filepath.Join(t.TempDir(), b.name+".model")
					if err := model.Save(mp); err != nil {
						eng.Close()
						t.Fatalf("%s: Save: %v", b.name, err)
					}
					if saved, err = os.ReadFile(mp); err != nil {
						eng.Close()
						t.Fatal(err)
					}
				}
				eng.Close()

				if refPreds == nil {
					refPreds, refSaved = preds, saved
					continue
				}
				if len(preds) != len(refPreds) {
					t.Fatalf("%s: %d predictions, want %d", b.name, len(preds), len(refPreds))
				}
				for i := range preds {
					if preds[i] != refPreds[i] {
						t.Fatalf("%s: prediction %d = %v, %s = %v — backends disagree",
							b.name, i, preds[i], backends[0].name, refPreds[i])
					}
				}
				if tc.savable && string(saved) != string(refSaved) {
					t.Errorf("%s: serialized model differs from %s", b.name, backends[0].name)
				}
			}
		})
	}
}

// TestFitStandaloneHeapPath: m3.Fit trains on bare heap matrices with
// no engine at all and agrees with the engine-bound path.
func TestFitStandaloneHeapPath(t *testing.T) {
	path := digitsFile(t, 120)
	eng := New(Config{Mode: InMemory})
	defer eng.Close()
	tbl, err := eng.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	est := LogisticRegression{Binarize: true, Options: LogisticOptions{MaxIterations: 6}}

	viaEngine, err := eng.Fit(context.Background(), est, tbl)
	if err != nil {
		t.Fatal(err)
	}
	standalone, err := Fit(context.Background(), est, tbl.X, tbl.Labels)
	if err != nil {
		t.Fatal(err)
	}
	a := viaEngine.(*FittedLogistic)
	b := standalone.(*FittedLogistic)
	if a.Intercept != b.Intercept {
		t.Errorf("intercepts differ: %v vs %v", a.Intercept, b.Intercept)
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatalf("weight %d differs", i)
		}
	}
}

// TestFitPreCancelledContext: a context cancelled before Fit must make
// every estimator return ctx.Err() without training.
func TestFitPreCancelledContext(t *testing.T) {
	path := digitsFile(t, 120)
	eng := New(Config{Mode: MemoryMapped})
	defer eng.Close()
	tbl, err := eng.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range estimatorCases(FitOptions{}) {
		t.Run(tc.name, func(t *testing.T) {
			model, err := eng.Fit(ctx, tc.est, tbl)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if model != nil {
				t.Error("got a model from a cancelled fit")
			}
		})
	}
}

// TestFitCancelMidFit: cancelling from an iteration callback stops the
// fit within one block/iteration with context.Canceled — exercised for
// every iterative estimator, and under -race for logreg and kmeans in
// the CI workflow (this test is part of the root -race run).
func TestFitCancelMidFit(t *testing.T) {
	path := digitsFile(t, 200)
	eng := New(Config{Mode: MemoryMapped})
	defer eng.Close()
	tbl, err := eng.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range estimatorCases(FitOptions{}) {
		if !tc.iterates {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			fired := false
			// Rebuild the estimator with a cancelling callback wired in.
			cases := estimatorCases(FitOptions{Callback: func(info IterInfo) bool {
				if !fired {
					fired = true
					cancel()
				}
				return true
			}})
			var est Estimator
			for _, c := range cases {
				if c.name == tc.name {
					est = c.est
				}
			}
			model, err := eng.Fit(ctx, est, tbl)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled (callback fired: %v)", err, fired)
			}
			if model != nil {
				t.Error("got a model from a cancelled fit")
			}
			if !fired {
				t.Error("callback never ran")
			}
		})
	}
}

// TestEngineFitValidation covers the entry-point error paths.
func TestEngineFitValidation(t *testing.T) {
	path := digitsFile(t, 50)
	eng := New(Config{})
	tbl, err := eng.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Fit(context.Background(), nil, tbl); err == nil {
		t.Error("accepted nil estimator")
	}
	est := NaiveBayes{Classes: 10}
	if _, err := eng.Fit(context.Background(), est, nil); err == nil {
		t.Error("accepted nil table")
	}
	eng.Close()
	if _, err := eng.Fit(context.Background(), est, tbl); err == nil {
		t.Error("accepted fit on closed engine")
	}
}

// TestEngineWorkersReachTrainers: the engine's Workers config is
// stamped on opened matrices, so estimators inherit it with no per-fit
// plumbing — and results stay bit-identical across pool sizes.
func TestEngineWorkersReachTrainers(t *testing.T) {
	path := digitsFile(t, 150)
	fitWith := func(workers int) *FittedLogistic {
		t.Helper()
		eng := New(Config{Mode: MemoryMapped, Workers: workers})
		defer eng.Close()
		tbl, err := eng.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if workers > 0 && tbl.X.WorkersHint() != workers {
			t.Fatalf("workers hint = %d, want %d", tbl.X.WorkersHint(), workers)
		}
		m, err := eng.Fit(context.Background(), LogisticRegression{
			Binarize: true, Options: LogisticOptions{MaxIterations: 6},
		}, tbl)
		if err != nil {
			t.Fatal(err)
		}
		return m.(*FittedLogistic)
	}
	ref := fitWith(1)
	for _, workers := range []int{2, 3, 7} {
		m := fitWith(workers)
		for i := range ref.Weights {
			if m.Weights[i] != ref.Weights[i] {
				t.Fatalf("workers=%d: weight %d differs from sequential", workers, i)
			}
		}
	}
}
