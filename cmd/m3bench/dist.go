package main

// The dist experiment: real row-sharded training over localhost
// workers (internal/dist — the actual wire protocol, not a model),
// then the simulated paper-hardware scale-out. The real half measures
// what one machine can show honestly — wall clock, rounds, and that
// bytes shipped per round depend on the model width, not the dataset;
// the simulated half (bench.DistScale) puts K paper PCs behind the
// same protocol to show where sharding pays: once each shard fits the
// worker's RAM, the out-of-core fit collapses to in-core speed.

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"m3"
	"m3/internal/bench"
	"m3/internal/dist"
	"m3/internal/obs"
)

// runDistReal fits logreg on a real in-process cluster of k workers
// and returns the wall seconds plus the fit's traffic delta.
func runDistReal(path string, k int, est m3.Estimator) (float64, m3.ClusterStats, error) {
	ctx := context.Background()
	addrs := make([]string, k)
	workers := make([]*dist.Worker, k)
	for i := 0; i < k; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, m3.ClusterStats{}, err
		}
		addrs[i] = ln.Addr().String()
		w := dist.NewWorker(dist.WorkerConfig{Mode: m3.MemoryMapped})
		workers[i] = w
		go w.Serve(ln)
	}
	defer func() {
		for _, w := range workers {
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			w.Shutdown(sctx)
			cancel()
		}
	}()

	cl, err := m3.DialCluster(ctx, addrs, m3.ClusterOptions{})
	if err != nil {
		return 0, m3.ClusterStats{}, err
	}
	defer cl.Close()

	before := cl.Stats()
	start := time.Now()
	if _, err := cl.Fit(ctx, est, path); err != nil {
		return 0, m3.ClusterStats{}, err
	}
	wall := time.Since(start).Seconds()
	return wall, cl.Stats().Sub(before), nil
}

// runDist measures real localhost sharding, then simulates the
// paper-hardware scale-out across shards × dataset size.
func runDist(machine bench.Machine, w bench.Workload, rows int64, rec *recorder) error {
	header("Distributed — localhost m3worker cluster (real wire protocol)")
	dir, err := os.MkdirTemp("", "m3bench-dist")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "digits.m3")
	if err := m3.GenerateInfimnist(path, rows, 13); err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size()

	est := m3.LogisticRegression{
		Binarize: true, Positive: 0,
		Options: m3.LogisticOptions{MaxIterations: 10},
	}
	fmt.Printf("dataset: %.1f MB (%d rows), logreg 10 iters, workers on 127.0.0.1\n\n", float64(size)/1e6, rows)
	fmt.Printf("%8s %12s %8s %14s %14s %12s\n", "shards", "wall", "rounds", "ship/round", "ship/dataset", "straggler")
	for _, shards := range []int{1, 2, 4} {
		snapBefore := obs.Default().Snapshot()
		wall, st, err := runDistReal(path, shards, est)
		if err != nil {
			return fmt.Errorf("dist %d shards: %w", shards, err)
		}
		perRound := int64(0)
		if st.Rounds > 0 {
			perRound = (st.BytesSent + st.BytesReceived) / st.Rounds
		}
		shipped := st.BytesSent + st.BytesReceived
		fmt.Printf("%8d %10.2fs %8d %12.1fKB %13.4f%% %10.1fms\n",
			shards, wall, st.Rounds, float64(perRound)/1e3,
			100*float64(shipped)/float64(size), st.StragglerWait.Seconds()*1e3)
		rec.add(Record{
			Experiment: "dist", Algorithm: "logreg", Mode: "localhost",
			Workers: shards, Shards: shards, SizeBytes: size,
			WallSeconds: wall, Rounds: st.Rounds, BytesPerRound: perRound,
			StragglerWaitSeconds: st.StragglerWait.Seconds(),
			Counters:             snapDelta(snapBefore),
		})
	}
	fmt.Println("\nwire traffic is per-round aggregates (weights down, per-group")
	fmt.Println("gradient partials up) — a fixed cost per pass, independent of rows.")

	header("Distributed — simulated scale-out on paper hardware (32 GB RAM/worker)")
	shardCounts := []int{1, 2, 4, 8}
	sizes := []int64{48e9, 96e9, 190e9}
	points, err := bench.DistScale(machine, w, shardCounts, sizes, bench.DefaultDistNet())
	if err != nil {
		return err
	}
	fmt.Printf("%10s %8s %12s %12s %14s %9s\n", "size", "shards", "sim wall", "net cost", "ship/round", "speedup")
	for _, p := range points {
		regime := ""
		if p.SizeBytes/int64(p.Shards) <= int64(machine.RAMBytes) {
			regime = "  (shard fits RAM)"
		}
		fmt.Printf("%8.0fGB %8d %10.0fs %11.1fs %12.1fKB %8.2fx%s\n",
			float64(p.SizeBytes)/1e9, p.Shards, p.Seconds, p.NetSeconds,
			float64(p.BytesPerRound)/1e3, p.Speedup, regime)
		rec.add(Record{
			Experiment: "dist", Algorithm: "logreg", Mode: "simulated-scale",
			Workers: p.Shards, Shards: p.Shards, SizeBytes: p.SizeBytes,
			SimSeconds: p.Seconds, Rounds: int64(p.Rounds),
			BytesPerRound: p.BytesPerRound, Speedup: p.Speedup,
		})
	}
	return nil
}
