package main

// The fusion experiment: the same K-stage pipeline fitted fused
// (Pipeline.Fit — virtual intermediate views, at most one cache
// materialization) and eager (materialize every stage, the pre-fusion
// behavior), in-RAM and out-of-core. Unlike the simulated paper
// experiments this one measures real wall-clock, heap and engine
// scratch traffic on this machine.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"m3"
	"m3/internal/bench"
	"m3/internal/obs"
)

// fusionPipeline builds a measured chain ending in final.
func fusionPipeline(stages []m3.Transformer, final m3.Estimator) m3.Pipeline {
	return m3.Pipeline{Stages: stages, Estimator: final}
}

// eagerFit replicates the pre-fusion Pipeline.Fit: every stage
// materialized through the engine, released once consumed, final fit
// on the last intermediate. It returns the stage count materialized.
func eagerFit(ctx context.Context, eng *m3.Engine, tbl *m3.Table, pipe m3.Pipeline) (int, error) {
	cur := eng.Dataset(tbl)
	owned := false
	materialized := 0
	for _, st := range pipe.Stages {
		tm, err := st.FitTransform(ctx, cur)
		if err != nil {
			return materialized, err
		}
		next, err := tm.(m3.TransformerModel).Transform(ctx, cur)
		if err != nil {
			return materialized, err
		}
		if owned {
			if err := cur.Release(); err != nil {
				return materialized, err
			}
		}
		cur, owned = next, true
		materialized++
	}
	_, err := pipe.Estimator.Fit(ctx, cur)
	if owned {
		if rerr := cur.Release(); err == nil {
			err = rerr
		}
	}
	return materialized, err
}

// measureFusion runs one (mode, pipeline, variant) fit and returns
// the measured point.
func measureFusion(eng *m3.Engine, tbl *m3.Table, pipe m3.Pipeline, mode, name, variant string, size int64) (bench.FusionPoint, error) {
	ctx := context.Background()
	var ms0, ms1 runtime.MemStats
	st0 := eng.Stats()
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	materialized := 0
	switch variant {
	case "fused":
		model, err := pipe.Fit(ctx, eng.Dataset(tbl))
		if err != nil {
			return bench.FusionPoint{}, err
		}
		materialized = model.(*m3.FittedPipeline).Materializations()
	case "eager":
		var err error
		if materialized, err = eagerFit(ctx, eng, tbl, pipe); err != nil {
			return bench.FusionPoint{}, err
		}
	}

	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	st1 := eng.Stats()
	return bench.FusionPoint{
		Mode: mode, Pipeline: name, Variant: variant, SizeBytes: size,
		WallSeconds:      wall,
		HeapAllocBytes:   int64(ms1.TotalAlloc - ms0.TotalAlloc),
		ScratchAllocs:    st1.Allocs - st0.Allocs,
		ScratchBytes:     st1.Bytes - st0.Bytes,
		Materializations: materialized,
	}, nil
}

// runFusion measures the fused-vs-eager pipeline comparison for a
// multi-epoch final (logreg: fused keeps exactly one cache) and a
// streaming final (naive Bayes: fused materializes nothing), in-RAM
// and out-of-core.
func runFusion(rows int64, rec *recorder) error {
	header("Fusion — fused pipeline fit vs eager per-stage materialization")
	dir, err := os.MkdirTemp("", "m3bench-fusion")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "digits.m3")
	if err := m3.GenerateInfimnist(path, rows, 7); err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size()

	modes := []struct {
		name string
		cfg  m3.Config
	}{
		// In-RAM: everything fits the default budget; eager's cost is
		// the extra passes and heap traffic.
		{"in-ram", m3.Config{Mode: m3.InMemory, TempDir: dir}},
		// Out-of-core: a budget far below every intermediate — eager
		// writes each one to an mmap temp file, fused writes at most
		// the training cache.
		{"out-of-core", m3.Config{Mode: m3.Auto, MemoryBudget: 1 << 16, TempDir: dir}},
	}
	scalers := []m3.Transformer{m3.StandardScaler{}, m3.MinMaxScaler{}}
	withPCA := append(append([]m3.Transformer(nil), scalers...),
		m3.PrincipalComponents{Options: m3.PCAOptions{Components: 16, Seed: 1}})
	pipelines := []struct {
		name   string
		stages []m3.Transformer
		final  m3.Estimator
	}{
		// Bandwidth-bound: cheap kernels, streaming final — the pure
		// fusion case (0 materializations, every pass at scan speed).
		{"scale→minmax→bayes", scalers, m3.NaiveBayes{Classes: 10}},
		// Compute-heavy stage + multi-epoch final: fused keeps exactly
		// one materialization (the logreg training cache).
		{"scale→minmax→pca16→logreg", withPCA, m3.LogisticRegression{
			Binarize: true, Positive: 0,
			Options: m3.LogisticOptions{MaxIterations: 10},
		}},
	}

	var points []bench.FusionPoint
	for _, mode := range modes {
		eng := m3.New(mode.cfg)
		tbl, err := eng.Open(path)
		if err != nil {
			eng.Close()
			return err
		}
		for _, pl := range pipelines {
			for _, variant := range []string{"eager", "fused"} {
				snapBefore := obs.Default().Snapshot()
				p, err := measureFusion(eng, tbl, fusionPipeline(pl.stages, pl.final), mode.name, pl.name, variant, size)
				if err != nil {
					eng.Close()
					return fmt.Errorf("fusion %s/%s/%s: %w", mode.name, pl.name, variant, err)
				}
				points = append(points, p)
				rec.add(Record{
					Experiment: "fusion", Algorithm: pl.name,
					Mode: mode.name + "-" + variant, Workers: runtime.NumCPU(),
					SizeBytes: size, WallSeconds: p.WallSeconds,
					HeapAllocBytes: p.HeapAllocBytes,
					ScratchAllocs:  p.ScratchAllocs, ScratchBytes: p.ScratchBytes,
					Materializations: p.Materializations,
					Counters:         snapDelta(snapBefore),
				})
			}
		}
		if err := eng.Close(); err != nil {
			return err
		}
	}
	return bench.RenderFusion(os.Stdout, points)
}
