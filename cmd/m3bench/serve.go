package main

// The serving experiment: real wall-clock load against in-process
// m3serve servers — micro-batched vs one-request-per-PredictMatrix,
// in-RAM vs out-of-core (mmap) models — the paper's single-machine
// economics applied to inference.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"m3"
	"m3/internal/bench"
	"m3/internal/obs"
	"m3/internal/serve"
)

// serveWorkerCounts are the concurrent-client sweep points.
var serveWorkerCounts = []int{16, 64}

// serveModel is one served model of the sweep.
type serveModel struct {
	name   string
	regime string // "in-ram" | "out-of-core"
}

// runServe trains a pipeline and two k-NN models (heap and mmap
// reference tables), serves all three behind a micro-batching server
// and a single-request baseline server, and measures throughput and
// latency quantiles for each (model, batching, workers) cell.
func runServe(rows int64, duration time.Duration, rec *recorder) error {
	header("Serving — micro-batched vs single-request prediction (real wall-clock)")
	dir, err := os.MkdirTemp("", "m3bench-serve")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	dsPath := filepath.Join(dir, "digits.m3")
	if err := m3.GenerateInfimnist(dsPath, rows, 7); err != nil {
		return err
	}

	// In-RAM engine: backs the pipeline fit, the heap k-NN reference
	// table, and the query pool.
	heapEng := m3.New(m3.Config{Mode: m3.InMemory})
	defer heapEng.Close()
	heapTbl, err := heapEng.Open(dsPath)
	if err != nil {
		return err
	}
	ctx := context.Background()

	reg := serve.NewRegistry()

	// Model 1: a saved scale→PCA→logreg pipeline, loaded from its file
	// exactly as m3serve -model would.
	fitted, err := heapEng.Fit(ctx, m3.Pipeline{
		Stages: []m3.Transformer{
			m3.StandardScaler{},
			m3.PrincipalComponents{Options: m3.PCAOptions{Components: 8, Seed: 1}},
		},
		Estimator: m3.LogisticRegression{
			Binarize: true, Positive: 0,
			Options: m3.LogisticOptions{MaxIterations: 8},
		},
	}, heapTbl)
	if err != nil {
		return err
	}
	pipePath := filepath.Join(dir, "pipe.model")
	if err := fitted.Save(pipePath); err != nil {
		return err
	}
	if _, err := reg.LoadFile("pipeline", pipePath); err != nil {
		return err
	}

	// Models 2 and 3: k-NN with the full dataset as reference table —
	// the predict cost is a scan of the table, so the backing regime
	// (heap vs mmap page cache) and batching both matter.
	knnHeap, err := heapEng.Fit(ctx, m3.KNNClassifier{K: 5, Classes: 10}, heapTbl)
	if err != nil {
		return err
	}
	reg.Set("knn", serve.NewSnapshot(knnHeap, m3.ModelInfo{Kind: "knn", InputCols: heapTbl.X.Cols(), Classes: 10}, "", nil))

	mmapEng := m3.New(m3.Config{Mode: m3.MemoryMapped})
	defer mmapEng.Close()
	mmapTbl, err := mmapEng.Open(dsPath)
	if err != nil {
		return err
	}
	knnMmap, err := mmapEng.Fit(ctx, m3.KNNClassifier{K: 5, Classes: 10}, mmapTbl)
	if err != nil {
		return err
	}
	reg.Set("knn-ooc", serve.NewSnapshot(knnMmap, m3.ModelInfo{Kind: "knn", InputCols: mmapTbl.X.Cols(), Classes: 10}, "", nil))

	// One registry, two servers: identical models, different batchers.
	micro := serve.NewServer(reg, serve.Config{BatchSize: 64, BatchDelay: time.Millisecond})
	single := serve.NewServer(reg, serve.Config{BatchSize: 1})
	tsMicro := httptest.NewServer(micro.Handler())
	tsSingle := httptest.NewServer(single.Handler())
	defer func() {
		tsMicro.Close()
		tsSingle.Close()
		micro.Drain()
		single.Drain()
		reg.Close()
	}()

	queryPool := queryRows(heapTbl, 256)
	servers := []struct {
		batching string
		url      string
	}{
		{"micro", tsMicro.URL},
		{"single", tsSingle.URL},
	}
	// The sweep targets the scan-bound models, where the paper's
	// economics apply: one pass over the reference table answers a
	// whole batch, so micro-batching divides memory traffic by the
	// batch size. The pipeline stays registered (exercising the
	// saved-file load path) but per-row-cheap models gain nothing from
	// scan amortization and would only measure HTTP overhead.
	models := []serveModel{
		{"knn", "in-ram"},
		{"knn-ooc", "out-of-core"},
	}

	var points []bench.ServePoint
	for _, model := range models {
		entry, ok := reg.Get(model.name)
		if !ok {
			return fmt.Errorf("model %s not registered", model.name)
		}
		for _, workers := range serveWorkerCounts {
			for _, srv := range servers {
				snapBefore := obs.Default().Snapshot()
				before := entry.Metrics().Snapshot()
				res, err := bench.ServeLoad(bench.ServeOptions{
					URL:      srv.url + "/models/" + model.name + "/predict",
					Queries:  queryPool,
					Workers:  workers,
					Duration: duration,
					Seed:     uint64(31*workers) + uint64(len(srv.batching)),
				})
				if err != nil {
					return err
				}
				after := entry.Metrics().Snapshot()
				meanBatch := 1.0
				if db := after.Batches - before.Batches; db > 0 {
					meanBatch = float64(after.Rows-before.Rows) / float64(db)
				}
				points = append(points, bench.ServePoint{
					Model: model.name, Regime: model.regime, Batching: srv.batching,
					Workers: workers, Result: res, MeanBatchRows: meanBatch,
				})
				rec.add(Record{
					Experiment: "serve", Algorithm: model.name, Mode: model.regime,
					Workers: workers, Batching: srv.batching,
					WallSeconds: res.DurationSeconds, Requests: res.Requests,
					Errors: res.Errors, QPS: res.QPS,
					P50Ms: res.P50Ms, P90Ms: res.P90Ms, P99Ms: res.P99Ms,
					MeanBatchRows: meanBatch,
					Counters:      snapDelta(snapBefore),
				})
			}
		}
	}
	return bench.RenderServe(os.Stdout, points)
}

// queryRows copies up to n feature rows out of tbl as a query pool.
func queryRows(tbl *m3.Table, n int) [][]float64 {
	if r := tbl.X.Rows(); n > r {
		n = r
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = append([]float64(nil), tbl.X.RawRow(i)...)
	}
	return out
}
