// Command m3bench regenerates the paper's evaluation artifacts on the
// simulated substrates (see DESIGN.md §2 for the substitutions):
//
//	m3bench -exp fig1a     # Figure 1a: runtime vs dataset size
//	m3bench -exp fig1b     # Figure 1b: M3 vs 4x/8x Spark, logreg+kmeans
//	m3bench -exp iobound   # §3.1 utilization finding (disk 100%, CPU ~13%)
//	m3bench -exp access    # §4 sequential vs random access study
//	m3bench -exp predict   # §4 runtime prediction at unseen sizes
//	m3bench -exp disks     # ablation: HDD vs SSD vs RAID 0
//	m3bench -exp energy    # §4 energy usage: desktop vs clusters
//	m3bench -exp locality  # §4 recorded traces + miss-ratio curves
//	m3bench -exp parallel  # real hardware: blocked scan, workers 1..N
//	m3bench -exp multicore # simulated: parallel faulting, workers × size
//	m3bench -exp fusion    # real hardware: fused vs eager pipeline fit
//	m3bench -exp serve     # real hardware: micro-batched vs single-request serving
//	m3bench -exp dist      # real localhost worker cluster + simulated scale-out
//	m3bench -exp all       # everything
//
// -experiment is accepted as an alias of -exp.
//
// With -json out.json, every experiment additionally appends
// machine-readable records (algorithm, mode, workers, wall/simulated
// seconds, faults) so benchmark trajectories can accumulate across
// runs.
//
// Simulated seconds model the paper's hardware (32 GB RAM desktop
// with a PCIe SSD; EMR m3.2xlarge workers); the shapes — who wins,
// by what factor, where the RAM knee falls — are the reproduction
// target, not the absolute values.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"m3/internal/bench"
	"m3/internal/infimnist"
	"m3/internal/iostats"
	"m3/internal/mat"
	"m3/internal/obs"
	"m3/internal/store"
)

// Record is one machine-readable benchmark result.
type Record struct {
	Experiment  string  `json:"experiment"`
	Algorithm   string  `json:"algorithm"`
	Mode        string  `json:"mode"`
	Workers     int     `json:"workers"`
	SizeBytes   int64   `json:"size_bytes,omitempty"`
	SimSeconds  float64 `json:"sim_seconds,omitempty"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	MajorFaults int64   `json:"major_faults,omitempty"`
	// FaultsValid is true when MajorFaults came from readable /proc
	// counters (real-hardware experiments only).
	FaultsValid bool `json:"faults_valid,omitempty"`
	Passes      int  `json:"passes,omitempty"`
	// Fusion-experiment fields: Go heap allocated during the fit,
	// engine scratch traffic, and pipeline intermediate count.
	HeapAllocBytes   int64 `json:"heap_alloc_bytes,omitempty"`
	ScratchAllocs    int64 `json:"scratch_allocs,omitempty"`
	ScratchBytes     int64 `json:"scratch_bytes,omitempty"`
	Materializations int   `json:"materializations,omitempty"`
	// Serve-experiment fields: load-harness throughput and latency
	// quantiles per (model, batching, workers) cell.
	Batching      string  `json:"batching,omitempty"`
	Requests      int64   `json:"requests,omitempty"`
	Errors        int64   `json:"errors,omitempty"`
	QPS           float64 `json:"qps,omitempty"`
	P50Ms         float64 `json:"p50_ms,omitempty"`
	P90Ms         float64 `json:"p90_ms,omitempty"`
	P99Ms         float64 `json:"p99_ms,omitempty"`
	MeanBatchRows float64 `json:"mean_batch_rows,omitempty"`
	// Dist-experiment fields: shard count, per-round aggregate
	// traffic, and speedup vs the 1-shard fit at the same size.
	Shards               int     `json:"shards,omitempty"`
	Rounds               int64   `json:"rounds,omitempty"`
	BytesPerRound        int64   `json:"bytes_per_round,omitempty"`
	StragglerWaitSeconds float64 `json:"straggler_wait_seconds,omitempty"`
	Speedup              float64 `json:"speedup,omitempty"`
	// Counters is the movement of the process-wide obs registry
	// (m3_process_* CPU/IO, m3_fit_* optimizer progress) across the
	// measured region, so records carry utilization alongside
	// wall-clock — the §3.1 "where did the time go" answer in the
	// BENCH_*.json artifact itself.
	Counters map[string]float64 `json:"counters,omitempty"`
}

// snapDelta returns the non-zero counter movement since before, or
// nil when nothing moved, keeping records compact.
func snapDelta(before obs.Snapshot) map[string]float64 {
	d := obs.Default().Snapshot().Sub(before)
	for k, v := range d {
		if v == 0 {
			delete(d, k)
		}
	}
	if len(d) == 0 {
		return nil
	}
	return d
}

// recorder accumulates records for -json output.
type recorder struct {
	records []Record
}

func (r *recorder) add(recs ...Record) {
	if r != nil {
		r.records = append(r.records, recs...)
	}
}

func (r *recorder) write(path string) error {
	out := struct {
		GeneratedAt string   `json:"generated_at"`
		Records     []Record `json:"records"`
	}{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Records:     r.records,
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func main() { os.Exit(benchMain()) }

// benchMain is main behind an exit code so the -trace / -profile
// defers flush even when an experiment fails partway.
func benchMain() int {
	exp := flag.String("exp", "all", "experiment: fig1a, fig1b, iobound, access, predict, disks, energy, locality, parallel, multicore, fusion, serve, dist, all")
	flag.StringVar(exp, "experiment", *exp, "alias of -exp")
	rows := flag.Int("rows", 512, "actual (scaled-down) row count the math runs on")
	seed := flag.Uint64("seed", 3, "workload seed")
	size := flag.Float64("size", 190e9, "nominal dataset bytes for single-size experiments")
	passes := flag.Int("passes", 10, "steady-state passes per multicore point")
	duration := flag.Duration("duration", 2*time.Second, "load duration per serve-experiment cell")
	jsonOut := flag.String("json", "", "write machine-readable results to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this path")
	profileOut := flag.String("profile", "", "write a CPU profile of the run to this path")
	flag.Parse()

	if *profileOut != "" {
		f, err := os.Create(*profileOut)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "m3bench: profile: %v\n", err)
			} else {
				fmt.Printf("cpu profile written to %s\n", *profileOut)
			}
		}()
	}
	if *traceOut != "" {
		obs.StartTrace()
		defer func() {
			tr := obs.StopTrace()
			if err := writeTrace(tr, *traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "m3bench: trace: %v\n", err)
			} else {
				fmt.Printf("trace written to %s (%d events)\n", *traceOut, len(tr.Events()))
			}
		}()
	}

	w := bench.Workload{NominalBytes: int64(*size), ActualRows: *rows, Seed: *seed}
	machine := bench.PaperPC()
	var rec *recorder
	if *jsonOut != "" {
		rec = &recorder{}
	}

	runners := map[string]func() error{
		"fig1a":     func() error { return runFig1a(machine, w, rec) },
		"fig1b":     func() error { return runFig1b(machine, w, rec) },
		"iobound":   func() error { return runIOBound(machine, w, rec) },
		"access":    func() error { return runAccess(machine, w, rec) },
		"predict":   func() error { return runPredict(machine, w, rec) },
		"disks":     func() error { return runDisks(w, rec) },
		"energy":    func() error { return runEnergy(machine, w, rec) },
		"locality":  func() error { return runLocality(w, rec) },
		"parallel":  func() error { return runParallel(rec) },
		"multicore": func() error { return runMultiCore(machine, w, *passes, rec) },
		"fusion":    func() error { return runFusion(int64(*rows), rec) },
		"serve":     func() error { return runServe(int64(*rows), *duration, rec) },
		"dist":      func() error { return runDist(machine, w, int64(*rows), rec) },
	}
	order := []string{"fig1a", "fig1b", "iobound", "access", "predict", "disks", "energy", "locality", "parallel", "multicore", "fusion", "serve", "dist"}

	if *exp == "all" {
		for _, name := range order {
			if err := runners[name](); err != nil {
				// Flush what completed so earlier experiments'
				// records survive a late failure.
				finish(rec, *jsonOut)
				return fail(err)
			}
		}
		finish(rec, *jsonOut)
		return 0
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "m3bench: unknown experiment %q\n", *exp)
		flag.Usage()
		return 2
	}
	if err := run(); err != nil {
		finish(rec, *jsonOut)
		return fail(err)
	}
	finish(rec, *jsonOut)
	return 0
}

func finish(rec *recorder, path string) {
	if rec == nil {
		return
	}
	if err := rec.write(path); err != nil {
		fmt.Fprintf(os.Stderr, "m3bench: %v\n", err)
		return
	}
	fmt.Printf("\nwrote %d records to %s\n", len(rec.records), path)
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "m3bench: %v\n", err)
	return 1
}

// writeTrace dumps a stopped trace as Chrome trace-event JSON.
func writeTrace(tr *obs.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tr.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

func runFig1a(machine bench.Machine, w bench.Workload, rec *recorder) error {
	header("Figure 1a — M3 runtime vs dataset size (logreg, 10 iters L-BFGS, RAM 32 GB)")
	res, err := bench.Fig1a(bench.Fig1aConfig{Machine: machine, Workload: w})
	if err != nil {
		return err
	}
	for _, p := range res.Points {
		rec.add(Record{
			Experiment: "fig1a", Algorithm: "logreg", Mode: "simulated",
			Workers: 1, SizeBytes: p.SizeBytes, SimSeconds: p.Seconds, Passes: p.Passes,
		})
	}
	return bench.RenderFig1a(os.Stdout, res, machine.RAMBytes)
}

func runFig1b(machine bench.Machine, w bench.Workload, rec *recorder) error {
	header(fmt.Sprintf("Figure 1b — M3 (1 PC) vs Spark clusters at %.0f GB", float64(w.NominalBytes)/1e9))
	rows, err := bench.Fig1b(machine, w)
	if err != nil {
		return err
	}
	for _, r := range rows {
		rec.add(Record{
			Experiment: "fig1b", Algorithm: r.Algorithm, Mode: r.System,
			Workers: 1, SizeBytes: w.NominalBytes, SimSeconds: r.Seconds,
		})
	}
	return bench.RenderFig1b(os.Stdout, rows)
}

func runIOBound(machine bench.Machine, w bench.Workload, rec *recorder) error {
	header("§3.1 — resource utilization of out-of-core M3")
	util, err := bench.IOBound(machine, w)
	if err != nil {
		return err
	}
	rec.add(Record{
		Experiment: "iobound", Algorithm: "logreg", Mode: "simulated",
		Workers: 1, SizeBytes: w.NominalBytes, SimSeconds: util.ElapsedSeconds,
	})
	fmt.Println(util)
	fmt.Printf("I/O bound: %v (paper: disk 100%% utilized, CPU ≈13%%)\n", util.IOBound())
	return nil
}

func runAccess(machine bench.Machine, w bench.Workload, rec *recorder) error {
	header("§4 — access-pattern study (same volume, different order)")
	seq, rnd, err := bench.RunAccessPattern(machine, w, 3)
	if err != nil {
		return err
	}
	rec.add(
		Record{Experiment: "access", Algorithm: "scan", Mode: "sequential", Workers: 1, SimSeconds: seq.Seconds},
		Record{Experiment: "access", Algorithm: "scan", Mode: "random", Workers: 1, SimSeconds: rnd.Seconds},
	)
	fmt.Printf("sequential scan: %8.0f s  (%s)\n", seq.Seconds, seq.Util)
	fmt.Printf("random access:   %8.0f s  (%s)\n", rnd.Seconds, rnd.Util)
	fmt.Printf("penalty: %.1fx — locality determines out-of-core performance\n", rnd.Seconds/seq.Seconds)
	return nil
}

func runPredict(machine bench.Machine, w bench.Workload, rec *recorder) error {
	header("§4 — runtime prediction from small-scale measurements")
	train := []int64{8e9, 16e9, 24e9, 40e9, 60e9, 80e9}
	test := []int64{120e9, 160e9, 190e9, 250e9}
	points, model, err := bench.Predict(machine, w, train, test)
	if err != nil {
		return err
	}
	for _, p := range points {
		rec.add(Record{
			Experiment: "predict", Algorithm: "logreg", Mode: "simulated",
			Workers: 1, SizeBytes: p.SizeBytes, SimSeconds: p.Actual,
		})
	}
	fmt.Printf("model: %s\n\n", model)
	return bench.RenderPredict(os.Stdout, points)
}

func runEnergy(machine bench.Machine, w bench.Workload, rec *recorder) error {
	header("§4 — energy usage: M3 desktop vs Spark clusters (logreg job)")
	rows, err := bench.Energy(machine, w)
	if err != nil {
		return err
	}
	for _, r := range rows {
		rec.add(Record{
			Experiment: "energy", Algorithm: "logreg", Mode: r.System,
			Workers: 1, SizeBytes: w.NominalBytes, SimSeconds: r.Seconds,
		})
	}
	return bench.RenderEnergy(os.Stdout, rows)
}

func runLocality(w bench.Workload, rec *recorder) error {
	header("§4 — recorded access traces and miss-ratio curves (Mattson analysis)")
	reports, err := bench.Locality(w)
	if err != nil {
		return err
	}
	for _, r := range reports {
		rec.add(Record{
			Experiment: "locality", Algorithm: r.Algorithm, Mode: "traced",
			Workers: 1, Passes: r.References,
		})
	}
	return bench.RenderLocality(os.Stdout, reports)
}

func runDisks(w bench.Workload, rec *recorder) error {
	header("Ablation — storage device (paper: \"faster disks, or RAID 0\")")
	reports, err := bench.DiskAblation(w)
	if err != nil {
		return err
	}
	disks := make([]string, 0, len(reports))
	for disk := range reports {
		disks = append(disks, disk)
	}
	sort.Strings(disks)
	for _, disk := range disks {
		rec.add(Record{
			Experiment: "disks", Algorithm: "logreg", Mode: disk,
			Workers: 1, SimSeconds: reports[disk].Seconds,
		})
	}
	return bench.RenderReports(os.Stdout, reports)
}

// runMultiCore sweeps parallel faulting on the simulated paged store:
// workers × nominal size, per-worker read-ahead streams, elapsed =
// max(slowest worker CPU, disk busy). The out-of-core rows show the
// paper's regime — disk pinned at 100%, speedup flat — while the
// in-RAM rows scale with the core count.
func runMultiCore(machine bench.Machine, w bench.Workload, passes int, rec *recorder) error {
	header("Multi-core — parallel faulting on the simulated paged store (per-worker streams)")
	points, err := bench.MultiCore(bench.MultiCoreConfig{
		Machine:  machine,
		Workload: w,
		Passes:   passes,
	})
	if err != nil {
		return err
	}
	for _, p := range points {
		rec.add(Record{
			Experiment: "multicore", Algorithm: "scan", Mode: "simulated",
			Workers: p.Workers, SizeBytes: p.SizeBytes, SimSeconds: p.Seconds,
			Passes: passes,
		})
	}
	return bench.RenderMultiCore(os.Stdout, points, machine.RAMBytes)
}

// workerSweep returns {1, 2, 4, NumCPU} deduplicated and sorted, so
// records never carry duplicate (mode, workers) keys.
func workerSweep() []int {
	sweep := []int{1, 2, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	out := sweep[:0]
	for _, w := range sweep {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// runParallel measures real wall-clock time of a full-matrix scan
// (y = A·x) on an mmap-backed matrix through the shared
// chunked-execution layer, sweeping the worker count — the hardware
// counterpart of BenchmarkParallelScan.
func runParallel(rec *recorder) error {
	header("Parallel — blocked mmap scan on this machine (internal/exec)")
	const rows, cols = 4096, 784
	dir, err := os.MkdirTemp("", "m3bench-parallel")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "scan.bin")
	ms, err := store.CreateMapped(path, rows*cols)
	if err != nil {
		return err
	}
	defer ms.Close()
	g := infimnist.Generator{Seed: 7}
	data, _ := g.Matrix(0, rows)
	copy(ms.Data(), data)
	x, err := mat.NewDenseStore(ms, rows, cols)
	if err != nil {
		return err
	}

	vec := make([]float64, cols)
	for j := range vec {
		vec[j] = 1 / float64(j+1)
	}
	y := make([]float64, rows)
	const reps = 20

	// measure returns the mean wall time per scan plus the major-fault
	// delta; faultsOK is false when /proc counters are unavailable, so
	// a zero is never mistaken for a fully-resident run.
	measure := func(workers int) (wall float64, faults int64, faultsOK bool) {
		before, errB := iostats.ReadProc()
		start := time.Now()
		for r := 0; r < reps; r++ {
			if workers == 0 {
				x.MulVec(y, vec)
			} else {
				x.MulVecParallel(y, vec, workers)
			}
		}
		wall = time.Since(start).Seconds() / reps
		after, errA := iostats.ReadProc()
		if errB != nil || errA != nil {
			return wall, 0, false
		}
		return wall, after.Sub(before).MajorFaults, true
	}
	faultCol := func(faults int64, ok bool) string {
		if !ok {
			return "n/a"
		}
		return fmt.Sprintf("%d", faults)
	}

	snapBefore := obs.Default().Snapshot()
	seqWall, seqFaults, seqOK := measure(0)
	fmt.Printf("%-12s %12s %14s %8s\n", "variant", "workers", "wall/scan", "faults")
	fmt.Printf("%-12s %12d %12.3fms %8s\n", "sequential", 1, seqWall*1e3, faultCol(seqFaults, seqOK))
	rec.add(Record{
		Experiment: "parallel", Algorithm: "scan", Mode: "mmap-seq",
		Workers: 1, SizeBytes: rows * cols * 8, WallSeconds: seqWall,
		MajorFaults: seqFaults, FaultsValid: seqOK,
		Counters: snapDelta(snapBefore),
	})
	for _, workers := range workerSweep() {
		snapBefore = obs.Default().Snapshot()
		wall, faults, ok := measure(workers)
		fmt.Printf("%-12s %12d %12.3fms %8s  (%.2fx)\n", "blocked", workers, wall*1e3, faultCol(faults, ok), seqWall/wall)
		rec.add(Record{
			Experiment: "parallel", Algorithm: "scan", Mode: "mmap-blocked",
			Workers: workers, SizeBytes: rows * cols * 8, WallSeconds: wall,
			MajorFaults: faults, FaultsValid: ok,
			Counters: snapDelta(snapBefore),
		})
	}
	return nil
}
