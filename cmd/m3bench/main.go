// Command m3bench regenerates the paper's evaluation artifacts on the
// simulated substrates (see DESIGN.md §2 for the substitutions):
//
//	m3bench -exp fig1a     # Figure 1a: runtime vs dataset size
//	m3bench -exp fig1b     # Figure 1b: M3 vs 4x/8x Spark, logreg+kmeans
//	m3bench -exp iobound   # §3.1 utilization finding (disk 100%, CPU ~13%)
//	m3bench -exp access    # §4 sequential vs random access study
//	m3bench -exp predict   # §4 runtime prediction at unseen sizes
//	m3bench -exp disks     # ablation: HDD vs SSD vs RAID 0
//	m3bench -exp energy    # §4 energy usage: desktop vs clusters
//	m3bench -exp locality  # §4 recorded traces + miss-ratio curves
//	m3bench -exp all       # everything
//
// Simulated seconds model the paper's hardware (32 GB RAM desktop
// with a PCIe SSD; EMR m3.2xlarge workers); the shapes — who wins,
// by what factor, where the RAM knee falls — are the reproduction
// target, not the absolute values.
package main

import (
	"flag"
	"fmt"
	"os"

	"m3/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig1a, fig1b, iobound, access, predict, disks, energy, all")
	rows := flag.Int("rows", 512, "actual (scaled-down) row count the math runs on")
	seed := flag.Uint64("seed", 3, "workload seed")
	size := flag.Float64("size", 190e9, "nominal dataset bytes for single-size experiments")
	flag.Parse()

	w := bench.Workload{NominalBytes: int64(*size), ActualRows: *rows, Seed: *seed}
	machine := bench.PaperPC()

	runners := map[string]func() error{
		"fig1a":    func() error { return runFig1a(machine, w) },
		"fig1b":    func() error { return runFig1b(machine, w) },
		"iobound":  func() error { return runIOBound(machine, w) },
		"access":   func() error { return runAccess(machine, w) },
		"predict":  func() error { return runPredict(machine, w) },
		"disks":    func() error { return runDisks(w) },
		"energy":   func() error { return runEnergy(machine, w) },
		"locality": func() error { return runLocality(w) },
	}
	order := []string{"fig1a", "fig1b", "iobound", "access", "predict", "disks", "energy", "locality"}

	if *exp == "all" {
		for _, name := range order {
			if err := runners[name](); err != nil {
				fail(err)
			}
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "m3bench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "m3bench: %v\n", err)
	os.Exit(1)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

func runFig1a(machine bench.Machine, w bench.Workload) error {
	header("Figure 1a — M3 runtime vs dataset size (logreg, 10 iters L-BFGS, RAM 32 GB)")
	res, err := bench.Fig1a(bench.Fig1aConfig{Machine: machine, Workload: w})
	if err != nil {
		return err
	}
	return bench.RenderFig1a(os.Stdout, res, machine.RAMBytes)
}

func runFig1b(machine bench.Machine, w bench.Workload) error {
	header(fmt.Sprintf("Figure 1b — M3 (1 PC) vs Spark clusters at %.0f GB", float64(w.NominalBytes)/1e9))
	rows, err := bench.Fig1b(machine, w)
	if err != nil {
		return err
	}
	return bench.RenderFig1b(os.Stdout, rows)
}

func runIOBound(machine bench.Machine, w bench.Workload) error {
	header("§3.1 — resource utilization of out-of-core M3")
	util, err := bench.IOBound(machine, w)
	if err != nil {
		return err
	}
	fmt.Println(util)
	fmt.Printf("I/O bound: %v (paper: disk 100%% utilized, CPU ≈13%%)\n", util.IOBound())
	return nil
}

func runAccess(machine bench.Machine, w bench.Workload) error {
	header("§4 — access-pattern study (same volume, different order)")
	seq, rnd, err := bench.RunAccessPattern(machine, w, 3)
	if err != nil {
		return err
	}
	fmt.Printf("sequential scan: %8.0f s  (%s)\n", seq.Seconds, seq.Util)
	fmt.Printf("random access:   %8.0f s  (%s)\n", rnd.Seconds, rnd.Util)
	fmt.Printf("penalty: %.1fx — locality determines out-of-core performance\n", rnd.Seconds/seq.Seconds)
	return nil
}

func runPredict(machine bench.Machine, w bench.Workload) error {
	header("§4 — runtime prediction from small-scale measurements")
	train := []int64{8e9, 16e9, 24e9, 40e9, 60e9, 80e9}
	test := []int64{120e9, 160e9, 190e9, 250e9}
	points, model, err := bench.Predict(machine, w, train, test)
	if err != nil {
		return err
	}
	fmt.Printf("model: %s\n\n", model)
	return bench.RenderPredict(os.Stdout, points)
}

func runEnergy(machine bench.Machine, w bench.Workload) error {
	header("§4 — energy usage: M3 desktop vs Spark clusters (logreg job)")
	rows, err := bench.Energy(machine, w)
	if err != nil {
		return err
	}
	return bench.RenderEnergy(os.Stdout, rows)
}

func runLocality(w bench.Workload) error {
	header("§4 — recorded access traces and miss-ratio curves (Mattson analysis)")
	reports, err := bench.Locality(w)
	if err != nil {
		return err
	}
	return bench.RenderLocality(os.Stdout, reports)
}

func runDisks(w bench.Workload) error {
	header("Ablation — storage device (paper: \"faster disks, or RAID 0\")")
	reports, err := bench.DiskAblation(w)
	if err != nil {
		return err
	}
	return bench.RenderReports(os.Stdout, reports)
}
