// Command m3train trains a model on an M3 dataset file, with the
// storage backend selectable on the command line — the Table 1
// "minimal change" exposed as a flag.
//
// Usage:
//
//	m3train -data digits.m3 -algo logreg  [-backend mmap|heap|auto] [-iters 10]
//	m3train -data digits.m3 -algo softmax [-classes 10]
//	m3train -data digits.m3 -algo kmeans  [-k 5]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"m3/internal/core"
	"m3/internal/iostats"
	"m3/internal/mat"
	"m3/internal/ml/eval"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/logreg"
	"m3/internal/ml/modelio"
)

func main() {
	data := flag.String("data", "", "dataset path (.m3 file)")
	algo := flag.String("algo", "logreg", "algorithm: logreg, softmax or kmeans")
	backend := flag.String("backend", "mmap", "storage backend: mmap, heap or auto")
	iters := flag.Int("iters", 10, "iterations (L-BFGS or Lloyd)")
	k := flag.Int("k", 5, "k-means cluster count")
	classes := flag.Int("classes", 10, "softmax class count")
	workers := flag.Int("workers", 0, "chunked-execution worker pool (0 = NumCPU, 1 = sequential)")
	positive := flag.Float64("positive", 0, "label treated as the positive class for logreg")
	save := flag.String("save", "", "save the trained model to this path")
	flag.Parse()

	if *data == "" {
		fmt.Fprintln(os.Stderr, "m3train: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*data, *algo, *backend, *iters, *k, *classes, *workers, *positive, *save); err != nil {
		fmt.Fprintf(os.Stderr, "m3train: %v\n", err)
		os.Exit(1)
	}
}

func run(data, algo, backend string, iters, k, classes, workers int, positive float64, save string) error {
	var mode core.Mode
	switch backend {
	case "mmap":
		mode = core.MemoryMapped
	case "heap":
		mode = core.InMemory
	case "auto":
		mode = core.Auto
	default:
		return fmt.Errorf("unknown backend %q", backend)
	}

	eng := core.New(core.Config{Mode: mode, Workers: workers})
	defer eng.Close()

	before, procErr := iostats.ReadProc()
	start := time.Now()
	tbl, err := eng.Open(data)
	if err != nil {
		return err
	}
	fmt.Printf("opened %s: %dx%d, mapped=%v (%.3fs)\n",
		data, tbl.X.Rows(), tbl.X.Cols(), tbl.Mapped, time.Since(start).Seconds())

	trainStart := time.Now()
	var trained any
	switch algo {
	case "logreg":
		if tbl.Labels == nil {
			return fmt.Errorf("dataset has no labels")
		}
		y := make([]float64, len(tbl.Labels))
		for i, v := range tbl.Labels {
			if v == positive {
				y[i] = 1
			}
		}
		model, err := logreg.TrainParallel(tbl.X, y, logreg.Options{MaxIterations: iters, GradTol: 1e-12}, eng.Workers())
		if err != nil {
			return err
		}
		fmt.Printf("logreg: %d iterations, %d data passes, loss %.6f, train accuracy %.4f\n",
			model.Result.Iterations, model.Result.Evaluations, model.Result.Value,
			model.Accuracy(tbl.X, y))
		trained = model

	case "softmax":
		if tbl.Labels == nil {
			return fmt.Errorf("dataset has no labels")
		}
		y := make([]int, len(tbl.Labels))
		for i, v := range tbl.Labels {
			y[i] = int(v)
		}
		model, err := logreg.TrainSoftmax(tbl.X, y, classes, logreg.Options{MaxIterations: iters, Workers: eng.Workers()})
		if err != nil {
			return err
		}
		fmt.Printf("softmax: %d iterations, loss %.6f, train accuracy %.4f\n",
			model.Result.Iterations, model.Result.Value, model.Accuracy(tbl.X, y))
		printConfusion(tbl.X, y, model, classes)
		trained = model

	case "kmeans":
		res, err := kmeans.Run(tbl.X, kmeans.Options{K: k, MaxIterations: iters, RunAllIterations: true, Workers: eng.Workers()})
		if err != nil {
			return err
		}
		fmt.Printf("kmeans: %d iterations, %d scans, inertia %.2f\n",
			res.Iterations, res.Scans, res.Inertia)
		trained = res

	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	fmt.Printf("training time: %v\n", time.Since(trainStart).Round(time.Millisecond))

	if save != "" && trained != nil {
		if err := modelio.SaveFile(save, trained); err != nil {
			return fmt.Errorf("saving model: %w", err)
		}
		fmt.Printf("model saved to %s\n", save)
	}

	if procErr == nil {
		if after, err := iostats.ReadProc(); err == nil {
			d := after.Sub(before)
			fmt.Printf("resources: user %.2fs, sys %.2fs, major faults %d, read %.1f MB\n",
				d.UserSeconds, d.SystemSeconds, d.MajorFaults, float64(d.ReadBytes)/1e6)
		}
	}
	return nil
}

// printConfusion renders per-class precision/recall for a trained
// softmax model.
func printConfusion(x *mat.Dense, y []int, model *logreg.SoftmaxModel, classes int) {
	cm, err := eval.NewConfusionMatrix(classes)
	if err != nil {
		return
	}
	ok := true
	x.ForEachRow(func(i int, row []float64) {
		if err := cm.Add(y[i], model.Predict(row)); err != nil {
			ok = false
		}
	})
	if !ok {
		return
	}
	fmt.Printf("macro F1: %.4f\n", cm.MacroF1())
	for c := 0; c < classes; c++ {
		fmt.Printf("  class %d: precision %.3f recall %.3f\n", c, cm.Precision(c), cm.Recall(c))
	}
}
