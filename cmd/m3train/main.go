// Command m3train trains a model on an M3 dataset file, with the
// storage backend selectable on the command line — the Table 1
// "minimal change" exposed as a flag. It drives the estimator surface:
// every algorithm goes through the same Engine.Fit call, with a
// cancellable context wired to SIGINT.
//
// Usage:
//
//	m3train -data digits.m3 -algo logreg  [-backend mmap|heap|auto] [-iters 10]
//	m3train -data digits.m3 -algo softmax [-classes 10]
//	m3train -data digits.m3 -algo kmeans  [-k 5]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"m3"
	"m3/internal/iostats"
	"m3/internal/mat"
	"m3/internal/ml/eval"
)

func main() {
	data := flag.String("data", "", "dataset path (.m3 file)")
	algo := flag.String("algo", "logreg", "algorithm: logreg, softmax or kmeans")
	backend := flag.String("backend", "mmap", "storage backend: mmap, heap or auto")
	iters := flag.Int("iters", 10, "iterations (L-BFGS or Lloyd)")
	k := flag.Int("k", 5, "k-means cluster count")
	classes := flag.Int("classes", 10, "softmax class count")
	workers := flag.Int("workers", 0, "chunked-execution worker pool (0 = NumCPU, 1 = sequential)")
	positive := flag.Float64("positive", 0, "label treated as the positive class for logreg")
	verbose := flag.Bool("verbose", false, "log one line per iteration")
	save := flag.String("save", "", "save the trained model to this path")
	flag.Parse()

	if *data == "" {
		fmt.Fprintln(os.Stderr, "m3train: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *data, *algo, *backend, *iters, *k, *classes, *workers, *positive, *verbose, *save); err != nil {
		fmt.Fprintf(os.Stderr, "m3train: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, data, algo, backend string, iters, k, classes, workers int, positive float64, verbose bool, save string) error {
	var mode m3.Mode
	switch backend {
	case "mmap":
		mode = m3.MemoryMapped
	case "heap":
		mode = m3.InMemory
	case "auto":
		mode = m3.Auto
	default:
		return fmt.Errorf("unknown backend %q", backend)
	}

	eng := m3.New(m3.Config{Mode: mode, Workers: workers})
	defer eng.Close()

	before, procErr := iostats.ReadProc()
	start := time.Now()
	tbl, err := eng.Open(data)
	if err != nil {
		return err
	}
	fmt.Printf("opened %s: %dx%d, mapped=%v (%.3fs)\n",
		data, tbl.X.Rows(), tbl.X.Cols(), tbl.Mapped, time.Since(start).Seconds())

	fitOpts := m3.FitOptions{Verbose: verbose}
	var est m3.Estimator
	switch algo {
	case "logreg":
		est = m3.LogisticRegression{
			Binarize: true, Positive: positive,
			Options: m3.LogisticOptions{FitOptions: fitOpts, MaxIterations: iters, GradTol: 1e-12},
		}
	case "softmax":
		est = m3.SoftmaxRegression{
			Classes: classes,
			Options: m3.LogisticOptions{FitOptions: fitOpts, MaxIterations: iters},
		}
	case "kmeans":
		est = m3.KMeansClustering{
			Options: m3.KMeansOptions{FitOptions: fitOpts, K: k, MaxIterations: iters, RunAllIterations: true},
		}
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}

	trainStart := time.Now()
	model, err := eng.Fit(ctx, est, tbl)
	if err != nil {
		return err
	}

	// Per-algorithm reporting off the rich fitted types.
	switch m := model.(type) {
	case *m3.FittedLogistic:
		y := make([]float64, len(tbl.Labels))
		for i, v := range tbl.Labels {
			if v == positive {
				y[i] = 1
			}
		}
		fmt.Printf("logreg: %d iterations, %d data passes, loss %.6f, train accuracy %.4f\n",
			m.Result.Iterations, m.Result.Evaluations, m.Result.Value,
			m.Accuracy(tbl.X, y))

	case *m3.FittedSoftmax:
		y := make([]int, len(tbl.Labels))
		for i, v := range tbl.Labels {
			y[i] = int(v)
		}
		fmt.Printf("softmax: %d iterations, loss %.6f, train accuracy %.4f\n",
			m.Result.Iterations, m.Result.Value, m.Accuracy(tbl.X, y))
		printConfusion(tbl.X, y, m, classes)

	case *m3.FittedKMeans:
		fmt.Printf("kmeans: %d iterations, %d scans, inertia %.2f\n",
			m.Iterations, m.Scans, m.Inertia)
	}
	fmt.Printf("training time: %v\n", time.Since(trainStart).Round(time.Millisecond))

	if save != "" {
		if err := model.Save(save); err != nil {
			return fmt.Errorf("saving model: %w", err)
		}
		fmt.Printf("model saved to %s\n", save)
	}

	if procErr == nil {
		if after, err := iostats.ReadProc(); err == nil {
			d := after.Sub(before)
			fmt.Printf("resources: user %.2fs, sys %.2fs, major faults %d, read %.1f MB\n",
				d.UserSeconds, d.SystemSeconds, d.MajorFaults, float64(d.ReadBytes)/1e6)
		}
	}
	return nil
}

// printConfusion renders per-class precision/recall for a trained
// softmax model.
func printConfusion(x *mat.Dense, y []int, model *m3.FittedSoftmax, classes int) {
	cm, err := eval.NewConfusionMatrix(classes)
	if err != nil {
		return
	}
	ok := true
	x.ForEachRow(func(i int, row []float64) {
		if err := cm.Add(y[i], model.SoftmaxModel.Predict(row)); err != nil {
			ok = false
		}
	})
	if !ok {
		return
	}
	fmt.Printf("macro F1: %.4f\n", cm.MacroF1())
	for c := 0; c < classes; c++ {
		fmt.Printf("  class %d: precision %.3f recall %.3f\n", c, cm.Precision(c), cm.Recall(c))
	}
}
