// Command m3train trains a model on an M3 dataset file, with the
// storage backend selectable on the command line — the Table 1
// "minimal change" exposed as a flag. It drives the estimator surface:
// every algorithm goes through the same Engine.Fit call, with a
// cancellable context wired to SIGINT. Preprocessing flags assemble a
// Pipeline around the chosen algorithm, so a scaled (and optionally
// PCA-reduced) fit stays one Engine.Fit call with the intermediates
// materialized through the engine.
//
// Usage:
//
//	m3train -data digits.m3 -algo logreg  [-backend mmap|heap|auto] [-iters 10]
//	m3train -data digits.m3 -algo softmax [-classes 10]
//	m3train -data digits.m3 -algo kmeans  [-k 5]
//	m3train -data digits.m3 -algo logreg -scale standard -pca 32   # pipeline fit
//	m3train -data digits.m3 -algo logreg -trace run.json           # Perfetto trace
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"time"

	"m3"
	"m3/internal/ml/eval"
	"m3/internal/obs"
)

// options carries every run knob (the flag surface outgrew positional
// parameters).
type options struct {
	data, algo, backend, scale string
	iters, k, classes          int
	workers, pcaK              int
	positive                   float64
	verbose                    bool
	save                       string
	trace, profile             string
	dist                       string
}

func main() {
	var o options
	flag.StringVar(&o.data, "data", "", "dataset path (.m3 file)")
	flag.StringVar(&o.algo, "algo", "logreg", "algorithm: logreg, softmax or kmeans")
	flag.StringVar(&o.backend, "backend", "mmap", "storage backend: mmap, heap or auto")
	flag.IntVar(&o.iters, "iters", 10, "iterations (L-BFGS or Lloyd)")
	flag.IntVar(&o.k, "k", 5, "k-means cluster count")
	flag.IntVar(&o.classes, "classes", 10, "softmax class count")
	flag.IntVar(&o.workers, "workers", 0, "chunked-execution worker pool (0 = NumCPU, 1 = sequential)")
	flag.Float64Var(&o.positive, "positive", 0, "label treated as the positive class for logreg")
	flag.StringVar(&o.scale, "scale", "", "prepend a scaling stage: standard or minmax")
	flag.IntVar(&o.pcaK, "pca", 0, "prepend a PCA stage projecting to this many components (0 = off)")
	flag.BoolVar(&o.verbose, "verbose", false, "log one line per iteration")
	flag.StringVar(&o.save, "save", "", "save the trained model to this path")
	flag.StringVar(&o.trace, "trace", "", "write a Chrome trace-event JSON of the run to this path (open in Perfetto)")
	flag.StringVar(&o.profile, "profile", "", "write a CPU pprof profile of the run to this path")
	flag.StringVar(&o.dist, "dist", "", "train on a cluster: comma-separated m3worker addresses (shard order follows address order)")
	flag.Parse()

	if o.data == "" {
		fmt.Fprintln(os.Stderr, "m3train: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, o); err != nil {
		fmt.Fprintf(os.Stderr, "m3train: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, o options) error {
	var mode m3.Mode
	switch o.backend {
	case "mmap":
		mode = m3.MemoryMapped
	case "heap":
		mode = m3.InMemory
	case "auto":
		mode = m3.Auto
	default:
		return fmt.Errorf("unknown backend %q", o.backend)
	}

	if o.profile != "" {
		f, err := os.Create(o.profile)
		if err != nil {
			return fmt.Errorf("profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err == nil {
				fmt.Printf("cpu profile written to %s\n", o.profile)
			}
		}()
	}
	if o.trace != "" {
		tr := obs.StartTrace()
		// Written via defer so an interrupted (SIGINT-cancelled) fit
		// still leaves a usable trace of what ran.
		defer func() {
			obs.StopTrace()
			f, err := os.Create(o.trace)
			if err != nil {
				fmt.Fprintf(os.Stderr, "m3train: trace: %v\n", err)
				return
			}
			werr := tr.WriteJSON(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintf(os.Stderr, "m3train: trace: %v\n", werr)
				return
			}
			fmt.Printf("trace written to %s (%d events)\n", o.trace, len(tr.Events()))
		}()
	}

	eng := m3.New(m3.Config{Mode: mode, Workers: o.workers})
	defer eng.Close()

	before, procErr := obs.ReadProc()
	disksBefore, _ := obs.ReadDisks()
	start := time.Now()
	tbl, err := eng.Open(o.data)
	if err != nil {
		return err
	}
	fmt.Printf("opened %s: %dx%d, mapped=%v (%.3fs)\n",
		o.data, tbl.X.Rows(), tbl.X.Cols(), tbl.Mapped, time.Since(start).Seconds())

	fitOpts := m3.FitOptions{Verbose: o.verbose}
	var est m3.Estimator
	switch o.algo {
	case "logreg":
		est = m3.LogisticRegression{
			Binarize: true, Positive: o.positive,
			Options: m3.LogisticOptions{FitOptions: fitOpts, MaxIterations: o.iters, GradTol: 1e-12},
		}
	case "softmax":
		est = m3.SoftmaxRegression{
			Classes: o.classes,
			Options: m3.LogisticOptions{FitOptions: fitOpts, MaxIterations: o.iters},
		}
	case "kmeans":
		est = m3.KMeansClustering{
			Options: m3.KMeansOptions{FitOptions: fitOpts, K: o.k, MaxIterations: o.iters, RunAllIterations: true},
		}
	default:
		return fmt.Errorf("unknown algorithm %q", o.algo)
	}

	// Preprocessing flags assemble a Pipeline around the estimator.
	var stages []m3.Transformer
	switch o.scale {
	case "":
	case "standard":
		stages = append(stages, m3.StandardScaler{Options: m3.PreprocessOptions{FitOptions: fitOpts}})
	case "minmax":
		stages = append(stages, m3.MinMaxScaler{Options: m3.PreprocessOptions{FitOptions: fitOpts}})
	default:
		return fmt.Errorf("unknown scale %q (want standard or minmax)", o.scale)
	}
	if o.pcaK > 0 {
		stages = append(stages, m3.PrincipalComponents{
			Options: m3.PCAOptions{FitOptions: fitOpts, Components: o.pcaK},
		})
	}
	if len(stages) > 0 {
		est = m3.Pipeline{Stages: stages, Estimator: est}
	}

	trainStart := time.Now()
	var model m3.Model
	if o.dist != "" {
		// Coordinator mode: the fit is sharded across m3worker
		// processes; every worker must see o.data at the same path.
		// The result is bit-identical to the local eng.Fit below.
		cl, derr := m3.DialCluster(ctx, strings.Split(o.dist, ","), m3.ClusterOptions{})
		if derr != nil {
			return derr
		}
		defer cl.Close()
		model, err = cl.Fit(ctx, est, o.data)
		if err != nil {
			return err
		}
		st := cl.Stats()
		fmt.Printf("dist: %d workers, %d shards, %d rounds, sent %.1f KB, received %.1f KB, straggler wait %v\n",
			cl.Workers(), cl.Shards(), st.Rounds,
			float64(st.BytesSent)/1e3, float64(st.BytesReceived)/1e3,
			st.StragglerWait.Round(time.Millisecond))
	} else if model, err = eng.Fit(ctx, est, tbl); err != nil {
		return err
	}

	// For pipelines, report each fitted stage and switch the rich
	// reporting to the final model; accuracy always goes through the
	// full chain (model.PredictMatrix routes rows stage by stage).
	rich := model
	if fp, ok := model.(*m3.FittedPipeline); ok {
		printPipeline(fp)
		rich = fp.FinalModel()
	}
	var preds []float64
	if o.algo != "kmeans" {
		if preds, err = model.PredictMatrix(tbl.X); err != nil {
			return err
		}
	}

	switch m := rich.(type) {
	case *m3.FittedLogistic:
		fmt.Printf("logreg: %d iterations, %d data passes, loss %.6f, train accuracy %.4f\n",
			m.Result.Iterations, m.Result.Evaluations, m.Result.Value,
			accuracy(preds, tbl.Labels, func(v float64) float64 {
				//m3vet:allow floateq -- class labels are exact ids, never computed
				if v == o.positive {
					return 1
				}
				return 0
			}))

	case *m3.FittedSoftmax:
		fmt.Printf("softmax: %d iterations, loss %.6f, train accuracy %.4f\n",
			m.Result.Iterations, m.Result.Value,
			accuracy(preds, tbl.Labels, func(v float64) float64 { return float64(int(v)) }))
		printConfusion(preds, tbl.Labels, o.classes)

	case *m3.FittedKMeans:
		fmt.Printf("kmeans: %d iterations, %d scans, inertia %.2f\n",
			m.Iterations, m.Scans, m.Inertia)
	}
	fmt.Printf("training time: %v\n", time.Since(trainStart).Round(time.Millisecond))

	if o.save != "" {
		if err := model.Save(o.save); err != nil {
			return fmt.Errorf("saving model: %w", err)
		}
		fmt.Printf("model saved to %s\n", o.save)
	}

	// Resource report — the paper's §3.1 observation on this run: CPU
	// seconds from /proc/self/stat, disk busy time from the busiest
	// device in /proc/diskstats. On an out-of-core run over cold data
	// this reproduces the disk-dominated profile (disk ~100% utilized,
	// CPU low); a warm page cache shows up as low disk utilization.
	if procErr == nil {
		if after, err := obs.ReadProc(); err == nil {
			d := after.Sub(before)
			fmt.Printf("resources: user %.2fs, sys %.2fs, major faults %d, read %.1f MB\n",
				d.UserSeconds, d.SystemSeconds, d.MajorFaults, float64(d.ReadBytes)/1e6)
			util := obs.Utilization{
				ElapsedSeconds: time.Since(start).Seconds(),
				CPUSeconds:     d.UserSeconds + d.SystemSeconds,
			}
			device := ""
			if disksAfter, err := obs.ReadDisks(); err == nil {
				busiest := disksAfter.Sub(disksBefore).Busiest()
				util.DiskSeconds = busiest.BusySeconds
				device = busiest.Device
			}
			if device != "" {
				fmt.Printf("utilization: %v (disk %s), I/O bound: %v\n", util, device, util.IOBound())
			} else {
				fmt.Printf("utilization: %v, I/O bound: %v\n", util, util.IOBound())
			}
		}
	}
	return nil
}

// printPipeline summarizes the fitted chain: one line per stage with
// its shape and whether it ran fused, plus the materialization count.
func printPipeline(fp *m3.FittedPipeline) {
	stages := fp.Stages()
	fused := fp.StageFused()
	fmt.Printf("pipeline: %d preprocessing stages\n", len(stages))
	for i, st := range stages {
		how := "materialized"
		if i < len(fused) && fused[i] {
			how = "fused"
		}
		fmt.Printf("  stage %d: %s (%s)\n", i, stageSummary(st), how)
	}
	if n := fp.Materializations(); n > 0 {
		where := "heap"
		if fp.CacheMapped() {
			where = "mmap"
		}
		fmt.Printf("  intermediates materialized: %d (last on %s)\n", n, where)
	} else {
		fmt.Printf("  intermediates materialized: 0 (fully streamed)\n")
	}
}

// stageSummary names a fitted transformer stage.
func stageSummary(st m3.TransformerModel) string {
	switch s := st.(type) {
	case *m3.FittedStandardScaler:
		return fmt.Sprintf("standard scaler over %d features", s.NumFeatures())
	case *m3.FittedMinMaxScaler:
		return fmt.Sprintf("min-max scaler over %d features", s.NumFeatures())
	case *m3.FittedPCA:
		return fmt.Sprintf("pca %d -> %d components", s.NumFeatures(), s.Components.Rows())
	}
	return fmt.Sprintf("%T", st)
}

// accuracy compares chain predictions against labels mapped to the
// model's output convention.
func accuracy(preds, labels []float64, want func(float64) float64) float64 {
	if len(preds) == 0 || len(preds) != len(labels) {
		return 0
	}
	correct := 0
	for i, p := range preds {
		//m3vet:allow floateq -- predictions and labels are exact class ids
		if p == want(labels[i]) {
			correct++
		}
	}
	return float64(correct) / float64(len(preds))
}

// printConfusion renders per-class precision/recall from chain
// predictions.
func printConfusion(preds, labels []float64, classes int) {
	cm, err := eval.NewConfusionMatrix(classes)
	if err != nil {
		return
	}
	for i, p := range preds {
		if err := cm.Add(int(labels[i]), int(p)); err != nil {
			return
		}
	}
	fmt.Printf("macro F1: %.4f\n", cm.MacroF1())
	for c := 0; c < classes; c++ {
		fmt.Printf("  class %d: precision %.3f recall %.3f\n", c, cm.Precision(c), cm.Recall(c))
	}
}
