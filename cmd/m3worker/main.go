// Command m3worker serves one row shard of a training cluster. A
// coordinator (m3train -dist, or m3.DialCluster) connects, tells the
// worker which contiguous merge-group-aligned row range of a dataset
// file it owns, and drives per-iteration scan rounds over it; all
// model math stays on the coordinator, so the wire carries only
// per-group partial states.
//
// Each accepted connection gets its own storage engine and shard
// state, torn down when the connection closes. SIGTERM and SIGINT
// drain in-flight requests (bounded by -drain) before exiting.
//
// Usage:
//
//	m3worker -listen :7071 [-backend mmap|heap|auto] [-workers 4]
//	m3worker -listen 127.0.0.1:0   # ephemeral port, printed on stdout
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"m3"
	"m3/internal/dist"
	"m3/internal/obs"
)

func main() {
	var (
		listen  = flag.String("listen", ":7071", "address to listen on (host:0 picks an ephemeral port)")
		backend = flag.String("backend", "mmap", "storage backend for shards: mmap, heap or auto")
		workers = flag.Int("workers", 0, "shard scan worker pool (0 = NumCPU)")
		budget  = flag.Int64("budget", 0, "auto-mode memory budget in bytes (0 = engine default)")
		drain   = flag.Duration("drain", 30*time.Second, "max wait for in-flight requests on shutdown")
		metrics = flag.String("metrics", "", "serve Prometheus /metrics on this address (empty = off)")
	)
	flag.Parse()
	if err := run(*listen, *backend, *workers, *budget, *drain, *metrics); err != nil {
		fmt.Fprintf(os.Stderr, "m3worker: %v\n", err)
		os.Exit(1)
	}
}

func run(listen, backend string, workers int, budget int64, drain time.Duration, metrics string) error {
	var mode m3.Mode
	switch backend {
	case "mmap":
		mode = m3.MemoryMapped
	case "heap":
		mode = m3.InMemory
	case "auto":
		mode = m3.Auto
	default:
		return fmt.Errorf("unknown backend %q", backend)
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	// The resolved address on stdout is the contract scripts rely on
	// when listening on an ephemeral port.
	fmt.Printf("m3worker: listening on %s (backend=%s)\n", ln.Addr(), backend)

	if metrics != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			obs.Default().WritePrometheus(w)
		})
		go func() {
			if err := http.ListenAndServe(metrics, mux); err != nil {
				fmt.Fprintf(os.Stderr, "m3worker: metrics: %v\n", err)
			}
		}()
	}

	w := dist.NewWorker(dist.WorkerConfig{Mode: mode, MemoryBudget: budget, Workers: workers})

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	done := make(chan error, 1)
	go func() { done <- w.Serve(ln) }()

	select {
	case err := <-done:
		return err
	case sig := <-sigs:
		fmt.Printf("m3worker: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := w.Shutdown(ctx)
		<-done
		if err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		fmt.Println("m3worker: drained")
		return nil
	}
}
