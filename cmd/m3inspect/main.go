// Command m3inspect examines and converts M3 dataset files and
// inspects saved models.
//
// Usage:
//
//	m3inspect info   -data digits.m3              # header, stats, residency
//	m3inspect verify -data digits.m3              # payload checksum
//	m3inspect head   -data digits.m3 [-n 5]       # first rows as CSV
//	m3inspect export -data digits.m3 -format csv|libsvm [-out file]
//	m3inspect import -in data.csv|data.svm -data out.m3 [-format csv|libsvm] [-labels]
//	m3inspect model  -data lr.model               # saved-model envelope (pipeline stages)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"m3/internal/dataset"
	"m3/internal/ml/bayes"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/linreg"
	"m3/internal/ml/logreg"
	"m3/internal/ml/modelio"
	"m3/internal/ml/pca"
	"m3/internal/ml/preprocess"
	"m3/internal/mmap"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	data := fs.String("data", "", "dataset path (.m3)")
	n := fs.Int("n", 5, "rows for head")
	format := fs.String("format", "csv", "export/import format: csv or libsvm")
	out := fs.String("out", "", "output path (default stdout for export)")
	in := fs.String("in", "", "input path for import")
	labels := fs.Bool("labels", true, "csv import: last column is the label")
	fs.Parse(os.Args[2:])

	var err error
	switch cmd {
	case "info":
		err = runInfo(*data)
	case "verify":
		err = runVerify(*data)
	case "head":
		err = runHead(*data, *n)
	case "export":
		err = runExport(*data, *format, *out)
	case "import":
		err = runImport(*in, *data, *format, *labels)
	case "model":
		err = runModel(*data)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "m3inspect %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: m3inspect <info|verify|head|export|import|model> [flags]")
}

// runModel prints a saved model's envelope: its kind and a
// per-payload summary, with one indented line per stage for pipeline
// envelopes.
func runModel(path string) error {
	if path == "" {
		return fmt.Errorf("-data is required")
	}
	v, kind, err := modelio.LoadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("kind: %s\n", kind)
	describeModel(v, "  ")
	return nil
}

// describeModel renders v's summary line at the current cursor —
// callers print any prefix ("stage N: ") first. Pipelines follow with
// one line per stage at indent, nested pipelines two spaces deeper.
func describeModel(v any, indent string) {
	switch m := v.(type) {
	case *logreg.Model:
		fmt.Printf("logistic: %d features, intercept %.6g\n", len(m.Weights), m.Intercept)
	case *logreg.SoftmaxModel:
		fmt.Printf("softmax: %d classes x %d features\n", m.Classes, m.Features)
	case *linreg.Model:
		fmt.Printf("linear: %d features, intercept %.6g\n", len(m.Weights), m.Intercept)
	case *kmeans.Result:
		k, d := m.Centroids.Dims()
		fmt.Printf("kmeans: %d centroids x %d features\n", k, d)
	case *bayes.Model:
		fmt.Printf("bayes: %d classes x %d features\n", m.Classes, m.Features)
	case *pca.Result:
		k, d := m.Components.Dims()
		explained := 0.0
		for _, r := range m.ExplainedRatio() {
			explained += r
		}
		fmt.Printf("pca: %d components over %d features (%.1f%% variance)\n", k, d, 100*explained)
	case *preprocess.StandardScaler:
		fmt.Printf("standard scaler: %d features\n", len(m.Mean))
	case *preprocess.MinMaxScaler:
		fmt.Printf("min-max scaler: %d features\n", len(m.Min))
	case *modelio.Pipeline:
		fmt.Printf("pipeline: %d stages\n", len(m.Stages))
		for i, s := range m.Stages {
			fmt.Printf("%sstage %d: ", indent, i)
			describeModel(s, indent+"  ")
		}
	default:
		fmt.Printf("%T\n", v)
	}
}

func open(path string) (*dataset.Dataset, error) {
	if path == "" {
		return nil, fmt.Errorf("-data is required")
	}
	return dataset.Open(path)
}

func runInfo(path string) error {
	d, err := open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	fmt.Printf("path:      %s\n", d.Path())
	fmt.Printf("rows:      %d\n", d.Rows)
	fmt.Printf("cols:      %d\n", d.Cols)
	fmt.Printf("labels:    %v\n", d.HasLabels)
	fmt.Printf("payload:   %.2f MB\n", float64(d.DataBytes()+d.LabelBytes())/1e6)
	fmt.Printf("checksum:  %#x\n", d.Checksum)
	if resident, total, err := d.Region().Residency(); err == nil {
		fmt.Printf("resident:  %d/%d pages (%.1f%%)\n", resident, total, 100*float64(resident)/float64(total))
	}
	if d.HasLabels {
		hist := map[float64]int{}
		for _, v := range d.Labels() {
			hist[v]++
		}
		fmt.Printf("label histogram (%d distinct):\n", len(hist))
		for v, c := range hist {
			fmt.Printf("  %g: %d\n", v, c)
		}
	}
	return nil
}

func runVerify(path string) error {
	d, err := open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Advise(mmap.Sequential); err != nil {
		return err
	}
	if err := d.Verify(); err != nil {
		return err
	}
	fmt.Println("checksum OK")
	return nil
}

func runHead(path string, n int) error {
	d, err := open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	if int64(n) > d.Rows {
		n = int(d.Rows)
	}
	x := d.X()
	for i := 0; i < n; i++ {
		var sb strings.Builder
		for j := 0; j < int(d.Cols); j++ {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%g", x.At(i, j))
		}
		if d.HasLabels {
			fmt.Fprintf(&sb, " -> %g", d.Labels()[i])
		}
		fmt.Println(sb.String())
	}
	return nil
}

func runExport(path, format, out string) error {
	d, err := open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "csv":
		return d.ExportCSV(w)
	case "libsvm":
		return d.ExportLibSVM(w)
	}
	return fmt.Errorf("unknown format %q", format)
}

func runImport(in, data, format string, labelLast bool) error {
	if in == "" || data == "" {
		return fmt.Errorf("-in and -data are required")
	}
	switch format {
	case "csv":
		return dataset.ImportCSV(in, data, labelLast)
	case "libsvm":
		return dataset.ImportLibSVM(in, data)
	}
	return fmt.Errorf("unknown format %q", format)
}
