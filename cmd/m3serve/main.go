// m3serve is the mmap-backed model-serving daemon: an HTTP/JSON
// prediction server over saved m3 models (any modelio kind, including
// whole pipelines) plus k-NN models whose reference tables stay
// memory-mapped and page on demand — the paper's out-of-core thesis
// applied to inference.
//
//	m3serve -listen 127.0.0.1:8080 \
//	    -model digits=pipe.model \
//	    -knn neighbors=digits.m3:5:10
//
// Requests are micro-batched (-batch rows / -deadline) into single
// PredictMatrix calls. POST /models/{name}/swap (or SIGHUP, which
// reloads every file-backed model from its current path) hot-swaps a
// model with zero dropped requests. SIGTERM/SIGINT drain in-flight
// batches before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"m3"
	"m3/internal/obs"
	"m3/internal/serve"
)

type modelFlag struct{ name, path string }

type knnFlag struct {
	name, path string
	k, classes int
}

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		batch        = flag.Int("batch", 64, "micro-batch flush threshold in rows")
		deadline     = flag.Duration("deadline", time.Millisecond, "micro-batch flush deadline (0 = flush when dispatcher is free)")
		queue        = flag.Int("queue", 4096, "max rows waiting in the batch queue before requests get 429 (0 = unbounded)")
		workers      = flag.Int("workers", 0, "engine workers for k-NN scans (0 = NumCPU)")
		knnMode      = flag.String("knn-mode", "mmap", "k-NN reference table backing: mmap|heap")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
		traceOut     = flag.String("trace", "", "write a Chrome trace-event JSON of request/batch spans to this path on shutdown")
	)
	var models []modelFlag
	flag.Func("model", "serve a saved model file as name=path (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		models = append(models, modelFlag{name, path})
		return nil
	})
	var knns []knnFlag
	flag.Func("knn", "serve k-NN over a dataset file as name=path:k:classes (repeatable)", func(v string) error {
		name, rest, ok := strings.Cut(v, "=")
		parts := strings.Split(rest, ":")
		if !ok || name == "" || len(parts) != 3 {
			return fmt.Errorf("want name=path:k:classes, got %q", v)
		}
		k, err1 := strconv.Atoi(parts[1])
		classes, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || k < 1 || classes < 2 {
			return fmt.Errorf("bad k/classes in %q", v)
		}
		knns = append(knns, knnFlag{name, parts[0], k, classes})
		return nil
	})
	flag.Parse()

	if len(models) == 0 && len(knns) == 0 {
		log.Fatal("m3serve: nothing to serve — pass at least one -model or -knn")
	}

	reg := serve.NewRegistry()
	for _, m := range models {
		entry, err := reg.LoadFile(m.name, m.path)
		if err != nil {
			log.Fatalf("m3serve: %v", err)
		}
		info, _ := entry.Info()
		log.Printf("loaded %s: kind=%s input_cols=%d classes=%d", m.name, info.Kind, info.InputCols, info.Classes)
	}

	mode := m3.MemoryMapped
	if *knnMode == "heap" {
		mode = m3.InMemory
	} else if *knnMode != "mmap" {
		log.Fatalf("m3serve: unknown -knn-mode %q", *knnMode)
	}
	for _, kf := range knns {
		if err := registerKNN(reg, kf, mode, *workers); err != nil {
			log.Fatalf("m3serve: %v", err)
		}
	}

	if *traceOut != "" {
		obs.StartTrace()
	}
	srv := serve.NewServer(reg, serve.Config{BatchSize: *batch, BatchDelay: *deadline, QueueRows: *queue})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("m3serve: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	// The resolved address (not the flag) so :0 is scriptable.
	log.Printf("listening on %s (batch=%d deadline=%s)", ln.Addr(), *batch, *deadline)

	sighup := make(chan os.Signal, 1)
	signal.Notify(sighup, syscall.SIGHUP)
	go func() {
		for range sighup {
			if err := reg.ReloadAll(); err != nil {
				log.Printf("reload: %v", err)
			} else {
				log.Printf("reloaded all file-backed models")
			}
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case sig := <-stop:
		log.Printf("%s: draining (timeout %s)", sig, *drainTimeout)
	case err := <-errCh:
		log.Fatalf("m3serve: %v", err)
	}

	// Stop accepting, let in-flight handlers finish (their batches
	// flush within -deadline), ctx-cancel whatever exceeds the
	// timeout, then retire models so engine mmaps close.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	srv.Drain()
	reg.Close()
	if *traceOut != "" {
		tr := obs.StopTrace()
		if f, err := os.Create(*traceOut); err != nil {
			log.Printf("trace: %v", err)
		} else {
			werr := tr.WriteJSON(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				log.Printf("trace: %v", werr)
			} else {
				log.Printf("trace written to %s (%d events)", *traceOut, len(tr.Events()))
			}
		}
	}
	log.Printf("drained")
}

// registerKNN opens the dataset under its own engine and serves
// majority-vote k-NN against the (typically mmap-backed) reference
// matrix. The engine closes only after the last in-flight batch
// releases the snapshot.
func registerKNN(reg *serve.Registry, kf knnFlag, mode m3.Mode, workers int) error {
	eng := m3.New(m3.Config{Mode: mode, Workers: workers})
	tbl, err := eng.Open(kf.path)
	if err != nil {
		eng.Close()
		return fmt.Errorf("opening %s: %w", kf.path, err)
	}
	if tbl.Labels == nil {
		eng.Close()
		return fmt.Errorf("dataset %s has no labels", kf.path)
	}
	model, err := eng.Fit(context.Background(), m3.KNNClassifier{K: kf.k, Classes: kf.classes}, tbl)
	if err != nil {
		eng.Close()
		return fmt.Errorf("fitting k-NN on %s: %w", kf.path, err)
	}
	info := m3.ModelInfo{Kind: "knn", InputCols: tbl.X.Cols(), Classes: kf.classes}
	snap := serve.NewSnapshot(model, info, "", eng.Close)
	snap.Stats = func() map[string]int64 {
		st := tbl.X.Store().Stats()
		es := eng.Stats()
		return map[string]int64{
			"bytes_touched":        st.BytesTouched,
			"resident_bytes":       st.ResidentBytes,
			"scratch_allocs":       es.Allocs,
			"scratch_releases":     es.Releases,
			"scratch_bytes":        es.Bytes,
			"scratch_mapped_bytes": es.MappedBytes,
		}
	}
	reg.Set(kf.name, snap)
	backing := "heap"
	if tbl.Mapped {
		backing = "mmap"
	}
	log.Printf("loaded %s: kind=knn (%s, %d refs) input_cols=%d classes=%d",
		kf.name, backing, tbl.X.Rows(), info.InputCols, kf.classes)
	return nil
}
