// Command infimnist-gen materializes Infimnist-style datasets as M3
// files. The paper's 190 GB file corresponds to -images 32000000;
// laptop-scale experiments use far fewer.
//
// Usage:
//
//	infimnist-gen -out digits.m3 -images 100000 [-seed 1] [-bytes 0]
//
// When -bytes is set, the image count is derived from the target
// payload size (6272 bytes per image, as in the paper).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"m3/internal/infimnist"
)

func main() {
	out := flag.String("out", "digits.m3", "output dataset path")
	images := flag.Int64("images", 10000, "number of images to generate")
	bytes := flag.Int64("bytes", 0, "target payload size in bytes (overrides -images)")
	seed := flag.Uint64("seed", 1, "generator seed")
	flag.Parse()

	n := *images
	if *bytes > 0 {
		n = infimnist.ImagesForBytes(*bytes)
	}
	if n <= 0 {
		fmt.Fprintln(os.Stderr, "infimnist-gen: image count must be positive")
		os.Exit(2)
	}

	fmt.Printf("generating %d images (%d features, %.2f GB payload) -> %s\n",
		n, infimnist.Features, float64(n*infimnist.BytesPerImage)/1e9, *out)
	start := time.Now()
	g := infimnist.Generator{Seed: *seed}
	if err := g.WriteDataset(*out, n); err != nil {
		fmt.Fprintf(os.Stderr, "infimnist-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}
