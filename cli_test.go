package m3

// End-to-end tests of the command-line tools: build each binary once
// and drive it the way a user would.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildCLIs compiles the cmd binaries into a shared temp dir.
func buildCLIs(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "m3-bin")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", binDir, "./cmd/...")
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			t.Logf("go build output: %s", out)
		}
	})
	if buildErr != nil {
		t.Skipf("cannot build CLIs: %v", buildErr)
	}
	return binDir
}

func runCLI(t *testing.T, name string, args ...string) string {
	t.Helper()
	bin := filepath.Join(buildCLIs(t), name)
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIGenerateInspectTrain(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	ds := filepath.Join(dir, "digits.m3")

	out := runCLI(t, "infimnist-gen", "-out", ds, "-images", "120", "-seed", "2")
	if !strings.Contains(out, "done in") {
		t.Errorf("gen output: %s", out)
	}

	out = runCLI(t, "m3inspect", "info", "-data", ds)
	for _, want := range []string{"rows:      120", "cols:      784", "labels:    true"} {
		if !strings.Contains(out, want) {
			t.Errorf("info output missing %q:\n%s", want, out)
		}
	}

	out = runCLI(t, "m3inspect", "verify", "-data", ds)
	if !strings.Contains(out, "checksum OK") {
		t.Errorf("verify output: %s", out)
	}

	model := filepath.Join(dir, "lr.model")
	out = runCLI(t, "m3train", "-data", ds, "-algo", "logreg", "-iters", "10", "-save", model)
	if !strings.Contains(out, "mapped=true") || !strings.Contains(out, "model saved") {
		t.Errorf("train output: %s", out)
	}
	if _, err := os.Stat(model); err != nil {
		t.Errorf("model file missing: %v", err)
	}

	// Saved models are inspectable.
	out = runCLI(t, "m3inspect", "model", "-data", model)
	for _, want := range []string{"kind: logistic", "784 features"} {
		if !strings.Contains(out, want) {
			t.Errorf("model output missing %q:\n%s", want, out)
		}
	}

	// Both backends work from the CLI.
	out = runCLI(t, "m3train", "-data", ds, "-algo", "kmeans", "-k", "4", "-backend", "heap")
	if !strings.Contains(out, "mapped=false") || !strings.Contains(out, "kmeans:") {
		t.Errorf("heap kmeans output: %s", out)
	}
}

func TestCLIPipelineTrainInspect(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	ds := filepath.Join(dir, "digits.m3")
	runCLI(t, "infimnist-gen", "-out", ds, "-images", "120", "-seed", "2")

	// -scale and -pca assemble a Pipeline around the estimator; the
	// stage summary reports where each intermediate materialized.
	model := filepath.Join(dir, "pipe.model")
	out := runCLI(t, "m3train", "-data", ds, "-algo", "logreg", "-iters", "8",
		"-scale", "standard", "-pca", "8", "-save", model)
	for _, want := range []string{
		"pipeline: 2 preprocessing stages",
		"standard scaler over 784 features",
		"pca 784 -> 8 components",
		"train accuracy",
		"model saved",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("pipeline train output missing %q:\n%s", want, out)
		}
	}

	// The saved KindPipeline envelope prints per-stage summaries.
	out = runCLI(t, "m3inspect", "model", "-data", model)
	for _, want := range []string{
		"kind: pipeline",
		"pipeline: 3 stages",
		"stage 0: standard scaler: 784 features",
		"stage 1: pca: 8 components over 784 features",
		"stage 2: logistic: 8 features",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("pipeline model output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIExportImportRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	ds := filepath.Join(dir, "d.m3")
	runCLI(t, "infimnist-gen", "-out", ds, "-images", "10")

	csv := filepath.Join(dir, "d.csv")
	runCLI(t, "m3inspect", "export", "-data", ds, "-format", "csv", "-out", csv)
	back := filepath.Join(dir, "back.m3")
	runCLI(t, "m3inspect", "import", "-in", csv, "-data", back, "-format", "csv")
	out := runCLI(t, "m3inspect", "info", "-data", back)
	if !strings.Contains(out, "rows:      10") {
		t.Errorf("roundtrip info: %s", out)
	}
}

func TestCLIBenchSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runCLI(t, "m3bench", "-exp", "iobound", "-rows", "64")
	if !strings.Contains(out, "I/O bound: true") {
		t.Errorf("m3bench iobound output: %s", out)
	}
}

func TestCLIBenchMultiCore(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// -experiment is the documented alias of -exp.
	out := runCLI(t, "m3bench", "-experiment", "multicore", "-rows", "64", "-passes", "2")
	for _, want := range []string{"workers", "speedup", "out-of-core", "in-RAM"} {
		if !strings.Contains(out, want) {
			t.Errorf("m3bench multicore output missing %q:\n%s", want, out)
		}
	}
}
