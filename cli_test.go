package m3

// End-to-end tests of the command-line tools: build each binary once
// and drive it the way a user would.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildCLIs compiles the cmd binaries into a shared temp dir.
func buildCLIs(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "m3-bin")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", binDir, "./cmd/...")
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			t.Logf("go build output: %s", out)
		}
	})
	if buildErr != nil {
		t.Skipf("cannot build CLIs: %v", buildErr)
	}
	return binDir
}

func runCLI(t *testing.T, name string, args ...string) string {
	t.Helper()
	bin := filepath.Join(buildCLIs(t), name)
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIGenerateInspectTrain(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	ds := filepath.Join(dir, "digits.m3")

	out := runCLI(t, "infimnist-gen", "-out", ds, "-images", "120", "-seed", "2")
	if !strings.Contains(out, "done in") {
		t.Errorf("gen output: %s", out)
	}

	out = runCLI(t, "m3inspect", "info", "-data", ds)
	for _, want := range []string{"rows:      120", "cols:      784", "labels:    true"} {
		if !strings.Contains(out, want) {
			t.Errorf("info output missing %q:\n%s", want, out)
		}
	}

	out = runCLI(t, "m3inspect", "verify", "-data", ds)
	if !strings.Contains(out, "checksum OK") {
		t.Errorf("verify output: %s", out)
	}

	model := filepath.Join(dir, "lr.model")
	out = runCLI(t, "m3train", "-data", ds, "-algo", "logreg", "-iters", "10", "-save", model)
	if !strings.Contains(out, "mapped=true") || !strings.Contains(out, "model saved") {
		t.Errorf("train output: %s", out)
	}
	if _, err := os.Stat(model); err != nil {
		t.Errorf("model file missing: %v", err)
	}

	// Saved models are inspectable.
	out = runCLI(t, "m3inspect", "model", "-data", model)
	for _, want := range []string{"kind: logistic", "784 features"} {
		if !strings.Contains(out, want) {
			t.Errorf("model output missing %q:\n%s", want, out)
		}
	}

	// Both backends work from the CLI.
	out = runCLI(t, "m3train", "-data", ds, "-algo", "kmeans", "-k", "4", "-backend", "heap")
	if !strings.Contains(out, "mapped=false") || !strings.Contains(out, "kmeans:") {
		t.Errorf("heap kmeans output: %s", out)
	}
}

func TestCLIPipelineTrainInspect(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	ds := filepath.Join(dir, "digits.m3")
	runCLI(t, "infimnist-gen", "-out", ds, "-images", "120", "-seed", "2")

	// -scale and -pca assemble a Pipeline around the estimator; the
	// stage summary reports where each intermediate materialized.
	model := filepath.Join(dir, "pipe.model")
	out := runCLI(t, "m3train", "-data", ds, "-algo", "logreg", "-iters", "8",
		"-scale", "standard", "-pca", "8", "-save", model)
	for _, want := range []string{
		"pipeline: 2 preprocessing stages",
		"standard scaler over 784 features",
		"pca 784 -> 8 components",
		"train accuracy",
		"model saved",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("pipeline train output missing %q:\n%s", want, out)
		}
	}

	// The saved KindPipeline envelope prints per-stage summaries.
	out = runCLI(t, "m3inspect", "model", "-data", model)
	for _, want := range []string{
		"kind: pipeline",
		"pipeline: 3 stages",
		"stage 0: standard scaler: 784 features",
		"stage 1: pca: 8 components over 784 features",
		"stage 2: logistic: 8 features",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("pipeline model output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIExportImportRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	ds := filepath.Join(dir, "d.m3")
	runCLI(t, "infimnist-gen", "-out", ds, "-images", "10")

	csv := filepath.Join(dir, "d.csv")
	runCLI(t, "m3inspect", "export", "-data", ds, "-format", "csv", "-out", csv)
	back := filepath.Join(dir, "back.m3")
	runCLI(t, "m3inspect", "import", "-in", csv, "-data", back, "-format", "csv")
	out := runCLI(t, "m3inspect", "info", "-data", back)
	if !strings.Contains(out, "rows:      10") {
		t.Errorf("roundtrip info: %s", out)
	}
}

func TestCLIBenchSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runCLI(t, "m3bench", "-exp", "iobound", "-rows", "64")
	if !strings.Contains(out, "I/O bound: true") {
		t.Errorf("m3bench iobound output: %s", out)
	}
}

// TestCLITrainTraceAndProfile: an out-of-core m3train -trace run
// writes valid Chrome trace-event JSON with per-worker block spans
// riding under the fit span, and -profile writes a non-empty CPU
// profile.
func TestCLITrainTraceAndProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	ds := filepath.Join(dir, "digits.m3")
	runCLI(t, "infimnist-gen", "-out", ds, "-images", "120", "-seed", "2")

	tracePath := filepath.Join(dir, "trace.json")
	profPath := filepath.Join(dir, "cpu.pprof")
	out := runCLI(t, "m3train", "-data", ds, "-algo", "logreg", "-iters", "8",
		"-scale", "standard", "-trace", tracePath, "-profile", profPath)
	if !strings.Contains(out, "mapped=true") {
		t.Errorf("train output: %s", out)
	}
	if !strings.Contains(out, "trace written to "+tracePath) {
		t.Errorf("train output missing trace confirmation:\n%s", out)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", trace.DisplayTimeUnit)
	}
	var fitSpans, scanSpans, workerBlocks int
	for _, e := range trace.TraceEvents {
		switch {
		case e.Cat == "fit" && e.Ph == "X":
			fitSpans++
		case e.Cat == "scan" && e.Ph == "X":
			scanSpans++
		case e.Cat == "block" && e.Ph == "X" && e.Tid >= 1:
			workerBlocks++
		}
	}
	if fitSpans != 1 {
		t.Errorf("fit spans = %d, want 1", fitSpans)
	}
	if scanSpans == 0 {
		t.Error("no scan spans in trace")
	}
	if workerBlocks == 0 {
		t.Error("no per-worker block events (tid >= 1) in trace")
	}

	if fi, err := os.Stat(profPath); err != nil {
		t.Errorf("cpu profile missing: %v", err)
	} else if fi.Size() == 0 {
		t.Error("cpu profile is empty")
	}
}

func TestCLIServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	ds := filepath.Join(dir, "digits.m3")
	runCLI(t, "infimnist-gen", "-out", ds, "-images", "120", "-seed", "2")
	model := filepath.Join(dir, "pipe.model")
	runCLI(t, "m3train", "-data", ds, "-algo", "logreg", "-iters", "8",
		"-scale", "standard", "-pca", "8", "-save", model)

	// Start the daemon on an ephemeral port and read the resolved
	// address off its log.
	bin := filepath.Join(buildCLIs(t), "m3serve")
	srv := exec.Command(bin, "-listen", "127.0.0.1:0",
		"-model", "digits="+model, "-knn", "nn="+ds+":3:10", "-batch", "8", "-deadline", "2ms")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	var addr string
	logs := make(chan string, 1)
	go func() {
		var lines []string
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			lines = append(lines, line)
			if _, rest, ok := strings.Cut(line, "listening on "); ok && addr == "" {
				addr = strings.Fields(rest)[0]
				logs <- addr
			}
		}
		logs <- strings.Join(lines, "\n")
	}()
	select {
	case <-logs:
	case <-time.After(30 * time.Second):
		t.Fatal("m3serve never logged its listen address")
	}
	base := "http://" + addr

	var health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health.Status != "ok" || health.Models != 2 {
		t.Fatalf("healthz = %+v", health)
	}

	// Predict against both the saved pipeline and the mmap-backed k-NN.
	row := make([]float64, 784)
	body, _ := json.Marshal(map[string][][]float64{"rows": {row, row}})
	for _, name := range []string{"digits", "nn"} {
		resp, err := http.Post(base+"/models/"+name+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Model       string    `json:"model"`
			Predictions []float64 `json:"predictions"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || err != nil || out.Model != name || len(out.Predictions) != 2 {
			t.Fatalf("%s predict: status %d err %v out %+v", name, resp.StatusCode, err, out)
		}
	}

	// /metrics?format=json reports both models, including the k-NN
	// store counters.
	resp, err = http.Get(base + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Models map[string]struct {
			Requests int64            `json:"requests"`
			Store    map[string]int64 `json:"store"`
		} `json:"models"`
	}
	json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	if m := metrics.Models["digits"]; m.Requests != 1 {
		t.Errorf("digits metrics = %+v", m)
	}
	if m := metrics.Models["nn"]; m.Requests != 1 || m.Store["bytes_touched"] == 0 {
		t.Errorf("nn metrics = %+v", m)
	}

	// Plain /metrics is Prometheus text exposition with the serve
	// counters and the mmap store gauges.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text exposition", ct)
	}
	prom := string(promBody)
	for _, want := range []string{
		"# TYPE m3_serve_requests_total counter",
		`m3_serve_requests_total{model="digits"} 1`,
		"# TYPE m3_serve_batch_rows histogram",
		`m3_store_bytes_touched{model="nn"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("Prometheus /metrics missing %q", want)
		}
	}

	// The profiling endpoints ride on the daemon's mux.
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d, want 200", resp.StatusCode)
	}

	// SIGTERM drains and exits cleanly. Read stderr to EOF *before*
	// calling Wait: Wait closes the pipe, and racing it against the
	// scanner goroutine can drop the final "drained" line.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var rest string
	select {
	case rest = <-logs:
	case <-time.After(30 * time.Second):
		t.Fatal("m3serve stderr never closed after SIGTERM")
	}
	if !strings.Contains(rest, "drained") {
		t.Errorf("shutdown log missing \"drained\":\n%s", rest)
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("m3serve exit: %v", err)
	}
}

func TestCLIBenchServe(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runCLI(t, "m3bench", "-exp", "serve", "-rows", "128", "-duration", "100ms")
	for _, want := range []string{"knn (in-ram)", "knn-ooc (out-of-core)", "micro", "single", "micro-batching"} {
		if !strings.Contains(out, want) {
			t.Errorf("m3bench serve output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIBenchMultiCore(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// -experiment is the documented alias of -exp.
	out := runCLI(t, "m3bench", "-experiment", "multicore", "-rows", "64", "-passes", "2")
	for _, want := range []string{"workers", "speedup", "out-of-core", "in-RAM"} {
		if !strings.Contains(out, want) {
			t.Errorf("m3bench multicore output missing %q:\n%s", want, out)
		}
	}
}
