package m3

import (
	"context"
	"math"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"m3/internal/dist"
)

// startTestCluster launches k in-process workers and dials a Cluster.
func startTestCluster(t *testing.T, k int, cfg dist.WorkerConfig) *Cluster {
	t.Helper()
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		w := dist.NewWorker(cfg)
		go w.Serve(ln)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			w.Shutdown(ctx)
		})
	}
	cl, err := DialCluster(context.Background(), addrs, ClusterOptions{CallTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestClusterBitIdentical is the tentpole acceptance check through
// the public API: for every shardable estimator, a 3-shard cluster
// fit must match the local fit bit for bit — same predictions over
// the full dataset AND identical saved model bytes — with workers on
// both heap and mmap backends.
func TestClusterBitIdentical(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "digits.m3")
	const n = 1200
	if err := GenerateInfimnist(path, n, 21); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		est  Estimator
	}{
		{"logreg", LogisticRegression{Binarize: true, Positive: 3,
			Options: LogisticOptions{MaxIterations: 8}}},
		{"softmax", SoftmaxRegression{Classes: 10,
			Options: LogisticOptions{MaxIterations: 5}}},
		{"bayes", NaiveBayes{Classes: 10}},
		{"linreg-exact", LinearRegression{Exact: true}},
		{"kmeans", KMeansClustering{
			Options: KMeansOptions{K: 5, MaxIterations: 8, Seed: 9}}},
		{"pca", PrincipalComponents{
			Options: PCAOptions{Components: 16, Seed: 5}}},
		{"scaled-logreg-pipeline", Pipeline{
			Stages: []Transformer{StandardScaler{}},
			Estimator: LogisticRegression{Binarize: true, Positive: 3,
				Options: LogisticOptions{MaxIterations: 6}},
		}},
		{"scaled-bayes-pipeline", Pipeline{
			Stages:    []Transformer{StandardScaler{}},
			Estimator: NaiveBayes{Classes: 10},
		}},
	}

	for _, mode := range []Mode{InMemory, MemoryMapped} {
		t.Run(mode.String(), func(t *testing.T) {
			cl := startTestCluster(t, 3, dist.WorkerConfig{Mode: mode, Workers: 2})
			eng := New(Config{Mode: InMemory, Workers: 2})
			defer eng.Close()
			tbl, err := eng.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					local, err := eng.Fit(context.Background(), tc.est, tbl)
					if err != nil {
						t.Fatal(err)
					}
					remote, err := cl.Fit(context.Background(), tc.est, path)
					if err != nil {
						t.Fatal(err)
					}
					if cl.Shards() != 3 {
						t.Fatalf("shards = %d, want 3", cl.Shards())
					}

					wantPreds, err := local.PredictMatrix(tbl.X)
					if err != nil {
						t.Fatal(err)
					}
					gotPreds, err := remote.PredictMatrix(tbl.X)
					if err != nil {
						t.Fatal(err)
					}
					if len(gotPreds) != len(wantPreds) {
						t.Fatalf("%d predictions, want %d", len(gotPreds), len(wantPreds))
					}
					for i := range gotPreds {
						if math.Float64bits(gotPreds[i]) != math.Float64bits(wantPreds[i]) {
							t.Fatalf("prediction[%d] = %v, want %v", i, gotPreds[i], wantPreds[i])
						}
					}

					lp := filepath.Join(dir, "local.model")
					rp := filepath.Join(dir, "remote.model")
					if err := local.Save(lp); err != nil {
						t.Fatal(err)
					}
					if err := remote.Save(rp); err != nil {
						t.Fatal(err)
					}
					lb, err := os.ReadFile(lp)
					if err != nil {
						t.Fatal(err)
					}
					rb, err := os.ReadFile(rp)
					if err != nil {
						t.Fatal(err)
					}
					if string(lb) != string(rb) {
						t.Fatalf("saved model bytes differ: local %d bytes, remote %d bytes", len(lb), len(rb))
					}
				})
			}
		})
	}
}

// TestClusterRejectsSequential: estimators whose math cannot shard
// are refused with an explanation, not silently approximated.
func TestClusterRejectsSequential(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.m3")
	if err := GenerateInfimnist(path, 300, 3); err != nil {
		t.Fatal(err)
	}
	cl := startTestCluster(t, 2, dist.WorkerConfig{Mode: InMemory, Workers: 1})

	if _, err := cl.Fit(context.Background(), SGDClassifier{Binarize: true}, path); err == nil || !strings.Contains(err.Error(), "sequential") {
		t.Fatalf("SGD err = %v, want sequential rejection", err)
	}
	if _, err := cl.Fit(context.Background(), KNNClassifier{}, path); err == nil || !strings.Contains(err.Error(), "cannot be trained on a cluster") {
		t.Fatalf("KNN err = %v, want unsupported-estimator error", err)
	}
}
