package m3_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"m3"
)

// ExampleEngine_Open demonstrates Table 1 of the paper: the only
// difference between in-memory and out-of-core training is the
// engine's mode.
func ExampleEngine_Open() {
	dir, _ := os.MkdirTemp("", "m3-example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "digits.m3")
	if err := m3.GenerateInfimnist(path, 100, 1); err != nil {
		fmt.Println(err)
		return
	}

	eng := m3.New(m3.Config{Mode: m3.MemoryMapped}) // ← the one-line change
	defer eng.Close()
	tbl, err := eng.Open(path)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("mapped=%v rows=%d cols=%d\n", tbl.Mapped, tbl.X.Rows(), tbl.X.Cols())
	// Output: mapped=true rows=100 cols=784
}

// ExampleEngine_Fit trains a binary classifier on a mapped dataset
// through the estimator surface — the algorithm-agnostic entry point
// of the v2 API.
func ExampleEngine_Fit() {
	dir, _ := os.MkdirTemp("", "m3-example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "digits.m3")
	if err := m3.GenerateInfimnist(path, 200, 1); err != nil {
		fmt.Println(err)
		return
	}
	eng := m3.New(m3.Config{Mode: m3.MemoryMapped})
	defer eng.Close()
	tbl, _ := eng.Open(path)

	est := m3.LogisticRegression{
		Binarize: true, Positive: 0, // digit zero vs rest
		Options: m3.LogisticOptions{MaxIterations: 20},
	}
	fitted, err := eng.Fit(context.Background(), est, tbl)
	if err != nil {
		fmt.Println(err)
		return
	}
	model := fitted.(*m3.FittedLogistic)
	y := make([]float64, len(tbl.Labels))
	for i, v := range tbl.Labels {
		if v == 0 {
			y[i] = 1
		}
	}
	fmt.Printf("train accuracy >= 0.99: %v\n", model.Accuracy(tbl.X, y) >= 0.99)
	// Output: train accuracy >= 0.99: true
}

// ExampleFit clusters heap-resident points through the standalone
// estimator entry point (no engine, no files).
func ExampleFit() {
	data := []float64{
		0, 0, 0.1, 0, 0, 0.1, // cluster around origin
		9, 9, 9.1, 9, 9, 9.1, // cluster around (9,9)
	}
	x := m3.WrapMatrix(data, 6, 2)
	fitted, err := m3.Fit(context.Background(), m3.KMeansClustering{
		Options: m3.KMeansOptions{K: 2, Seed: 1},
	}, x, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	res := fitted.(*m3.FittedKMeans)
	fmt.Printf("same cluster within groups: %v\n",
		res.Assignments[0] == res.Assignments[2] && res.Assignments[3] == res.Assignments[5])
	fmt.Printf("groups separated: %v\n", res.Assignments[0] != res.Assignments[3])
	// Output:
	// same cluster within groups: true
	// groups separated: true
}

// ExampleAllocFloat64 shows the lowest-level M3 primitive — the
// paper's mmapAlloc helper.
func ExampleAllocFloat64() {
	dir, _ := os.MkdirTemp("", "m3-example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "buf.bin")

	buf, closeFn, err := m3.AllocFloat64(path, 1000)
	if err != nil {
		fmt.Println(err)
		return
	}
	buf[999] = 42 // writes go to the file-backed mapping
	closeFn()

	again, closeFn2, _ := m3.MapFloat64(path)
	defer closeFn2()
	fmt.Println(again[999])
	// Output: 42
}

// ExampleNewOnlineLearner learns from a stream without a dataset.
func ExampleNewOnlineLearner() {
	l, err := m3.NewOnlineLearner(2, 0.5, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Stream a few linearly separable examples.
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			l.Update([]float64{1, 1}, 1)
		} else {
			l.Update([]float64{-1, -1}, 0)
		}
	}
	fmt.Println(l.Predict([]float64{2, 2}), l.Predict([]float64{-2, -2}))
	// Output: 1 0
}
