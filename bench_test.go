package m3

// This file is the benchmark index of the reproduction: one bench per
// paper artifact (Figure 1a, Figure 1b, the §3.1 utilization finding,
// the §4 studies) plus ablations and real-hardware microbenchmarks.
//
// Simulated experiments report their modelled runtime via the custom
// metric "sim_s" (simulated seconds of the full job at paper scale);
// wall-clock ns/op for those measures harness overhead only.
// Microbenchmarks (mmap vs heap scans, kernel throughput) are real
// wall-clock measurements on this machine.
//
// Run everything:
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"m3/internal/bench"
	"m3/internal/blas"
	"m3/internal/infimnist"
	"m3/internal/mat"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/knn"
	"m3/internal/ml/logreg"
	"m3/internal/optimize"
	"m3/internal/store"
	"m3/internal/vm"
)

func benchWorkload(nominal int64) bench.Workload {
	return bench.Workload{NominalBytes: nominal, ActualRows: 256, Seed: 3}
}

// BenchmarkFig1aScaling regenerates Figure 1a: M3 logistic regression
// runtime across dataset sizes (simulated platform: 32 GB RAM PC).
func BenchmarkFig1aScaling(b *testing.B) {
	for _, sizeGB := range []int64{8, 16, 24, 40, 70, 100, 130, 160, 190} {
		b.Run(fmt.Sprintf("size=%dGB", sizeGB), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				rep, err := bench.RunLogRegM3(bench.PaperPC(), benchWorkload(sizeGB*1e9))
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Seconds
			}
			b.ReportMetric(sim, "sim_s")
		})
	}
}

// BenchmarkFig1bLogreg regenerates the logistic-regression bars of
// Figure 1b (paper: M3 1950 s, 4x Spark 8256 s, 8x Spark 2864 s).
func BenchmarkFig1bLogreg(b *testing.B) {
	w := benchWorkload(190e9)
	systems := map[string]func() (bench.Report, error){
		"M3":      func() (bench.Report, error) { return bench.RunLogRegM3(bench.PaperPC(), w) },
		"Sparkx4": func() (bench.Report, error) { return bench.RunLogRegSpark(4, w) },
		"Sparkx8": func() (bench.Report, error) { return bench.RunLogRegSpark(8, w) },
	}
	for name, run := range systems {
		b.Run(name, func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				rep, err := run()
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Seconds
			}
			b.ReportMetric(sim, "sim_s")
		})
	}
}

// BenchmarkFig1bKMeans regenerates the k-means bars of Figure 1b
// (paper: M3 1164 s, 4x Spark 3491 s, 8x Spark 1604 s).
func BenchmarkFig1bKMeans(b *testing.B) {
	w := benchWorkload(190e9)
	systems := map[string]func() (bench.Report, error){
		"M3":      func() (bench.Report, error) { return bench.RunKMeansM3(bench.PaperPC(), w) },
		"Sparkx4": func() (bench.Report, error) { return bench.RunKMeansSpark(4, w) },
		"Sparkx8": func() (bench.Report, error) { return bench.RunKMeansSpark(8, w) },
	}
	for name, run := range systems {
		b.Run(name, func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				rep, err := run()
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Seconds
			}
			b.ReportMetric(sim, "sim_s")
		})
	}
}

// BenchmarkIOBoundUtilization regenerates the §3.1 finding; the
// custom metrics are utilization percentages (paper: disk 100%,
// CPU ≈13%).
func BenchmarkIOBoundUtilization(b *testing.B) {
	var cpu, disk float64
	for i := 0; i < b.N; i++ {
		util, err := bench.IOBound(bench.PaperPC(), benchWorkload(190e9))
		if err != nil {
			b.Fatal(err)
		}
		cpu, disk = util.CPUPercent(), util.DiskPercent()
	}
	b.ReportMetric(cpu, "cpu_%")
	b.ReportMetric(disk, "disk_%")
}

// BenchmarkAccessPatterns regenerates the §4 locality study:
// sequential scans versus random row access at equal volume.
func BenchmarkAccessPatterns(b *testing.B) {
	for _, pattern := range []string{"sequential", "random"} {
		b.Run(pattern, func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				seq, rnd, err := bench.RunAccessPattern(bench.PaperPC(), benchWorkload(190e9), 3)
				if err != nil {
					b.Fatal(err)
				}
				if pattern == "sequential" {
					sim = seq.Seconds
				} else {
					sim = rnd.Seconds
				}
			}
			b.ReportMetric(sim, "sim_s")
		})
	}
}

// BenchmarkAblationDisk quantifies the paper's "faster disks or
// RAID 0" speculation across storage models.
func BenchmarkAblationDisk(b *testing.B) {
	for _, disk := range []string{"hdd", "ssd", "raid0x2", "raid0x4"} {
		b.Run(disk, func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				reports, err := bench.DiskAblation(benchWorkload(190e9))
				if err != nil {
					b.Fatal(err)
				}
				sim = reports[disk].Seconds
			}
			b.ReportMetric(sim, "sim_s")
		})
	}
}

// BenchmarkAblationRAM sweeps the RAM budget at a fixed 64 GB
// dataset — the Figure 1a knee seen from the memory axis.
func BenchmarkAblationRAM(b *testing.B) {
	sizes := []int64{16e9, 48e9, 80e9}
	for _, ram := range sizes {
		b.Run(fmt.Sprintf("ram=%dGB", ram/1e9), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				reports, err := bench.RAMAblation(benchWorkload(64e9), []int64{ram})
				if err != nil {
					b.Fatal(err)
				}
				sim = reports[0].Seconds
			}
			b.ReportMetric(sim, "sim_s")
		})
	}
}

// BenchmarkAblationReadAhead quantifies kernel-style sequential
// read-ahead: the same out-of-core scans with the adaptive window on
// vs pinned to a single page.
func BenchmarkAblationReadAhead(b *testing.B) {
	for _, mode := range []string{"on", "off"} {
		b.Run(mode, func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				with, without, err := bench.ReadAheadAblation(bench.PaperPC(), 2)
				if err != nil {
					b.Fatal(err)
				}
				if mode == "on" {
					sim = with.Seconds
				} else {
					sim = without.Seconds
				}
			}
			b.ReportMetric(sim, "sim_s")
		})
	}
}

// BenchmarkAblationOptimizer compares L-BFGS against plain gradient
// descent on the digit problem: data passes to reach equal loss —
// the design choice behind the paper's use of mlpack's L-BFGS.
func BenchmarkAblationOptimizer(b *testing.B) {
	g := infimnist.Generator{Seed: 3}
	xs, labels := g.Matrix(0, 256)
	x := mat.NewDenseFrom(xs, 256, infimnist.Features)
	y := make([]float64, 256)
	for i, v := range labels {
		if v == 0 {
			y[i] = 1
		}
	}
	b.Run("lbfgs", func(b *testing.B) {
		var passes int
		for i := 0; i < b.N; i++ {
			obj, err := logreg.NewObjective(x, y, 1e-4, true)
			if err != nil {
				b.Fatal(err)
			}
			res, err := optimize.LBFGS(context.Background(), obj, make([]float64, obj.Dim()), optimize.LBFGSParams{MaxIterations: 10, GradTol: 1e-12})
			if err != nil {
				b.Fatal(err)
			}
			passes = res.Evaluations
		}
		b.ReportMetric(float64(passes), "passes")
	})
	b.Run("gd", func(b *testing.B) {
		var passes int
		for i := 0; i < b.N; i++ {
			obj, err := logreg.NewObjective(x, y, 1e-4, true)
			if err != nil {
				b.Fatal(err)
			}
			res, err := optimize.GradientDescent(context.Background(), obj, make([]float64, obj.Dim()), optimize.GDParams{MaxIterations: 10, GradTol: 1e-12})
			if err != nil {
				b.Fatal(err)
			}
			passes = res.Evaluations
		}
		b.ReportMetric(float64(passes), "passes")
	})
}

// BenchmarkGraphScaleFeasibility reproduces the introduction's claim
// that virtual-memory approaches "can handle graphs with as many as
// 6 billion edges" on one PC: it models one PageRank edge-scan
// iteration at that scale (6e9 edges × 16 B = 96 GB per pass) on the
// paper's machine. The metric is simulated seconds per iteration.
func BenchmarkGraphScaleFeasibility(b *testing.B) {
	machine := bench.PaperPC()
	const edgeBytes = int64(6e9) * 16
	var sim float64
	for i := 0; i < b.N; i++ {
		mem, err := vm.NewMemory(edgeBytes, vm.Config{
			PageSize:   edgeBytes / (64 << 10),
			CacheBytes: machine.RAMBytes,
			Disk:       machine.Disk,
		})
		if err != nil {
			b.Fatal(err)
		}
		var tl vm.Timeline
		tl.AddDisk(mem.Touch(0, edgeBytes))
		tl.AddCPU(float64(edgeBytes) / machine.CPUScanBytesPerSec)
		sim = tl.Elapsed()
	}
	b.ReportMetric(sim, "sim_s")
}

// --- Real-hardware microbenchmarks -----------------------------------

// BenchmarkScanHeapVsMmap measures real wall-clock throughput of a
// full-matrix scan over heap versus mmap backing — the transparency
// claim in hardware: once resident, mapped data scans at heap speed.
func BenchmarkScanHeapVsMmap(b *testing.B) {
	const rows, cols = 2048, 784
	g := infimnist.Generator{Seed: 1}
	data, _ := g.Matrix(0, rows)

	b.Run("heap", func(b *testing.B) {
		x := mat.NewDenseFrom(data, rows, cols)
		v := make([]float64, cols)
		y := make([]float64, rows)
		b.SetBytes(rows * cols * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x.MulVec(y, v)
		}
	})
	b.Run("mmap", func(b *testing.B) {
		dir := b.TempDir()
		path := filepath.Join(dir, "scan.bin")
		ms, err := store.CreateMapped(path, rows*cols)
		if err != nil {
			b.Fatal(err)
		}
		defer ms.Close()
		copy(ms.Data(), data)
		x, err := mat.NewDenseStore(ms, rows, cols)
		if err != nil {
			b.Fatal(err)
		}
		v := make([]float64, cols)
		y := make([]float64, rows)
		b.SetBytes(rows * cols * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x.MulVec(y, v)
		}
	})
}

// BenchmarkParallelScan compares a sequential full-matrix scan
// (MulVec) against the shared chunked-execution layer (MulVecParallel)
// on an mmap-backed matrix, sweeping the worker count. On a multi-core
// machine the blocked scan should reach >= 2x at 4 workers once the
// mapping is resident; on a single hardware thread it degenerates to
// the sequential scan plus scheduling overhead.
func BenchmarkParallelScan(b *testing.B) {
	const rows, cols = 4096, 784
	g := infimnist.Generator{Seed: 6}
	data, _ := g.Matrix(0, rows)

	dir := b.TempDir()
	ms, err := store.CreateMapped(filepath.Join(dir, "pscan.bin"), rows*cols)
	if err != nil {
		b.Fatal(err)
	}
	defer ms.Close()
	copy(ms.Data(), data)
	x, err := mat.NewDenseStore(ms, rows, cols)
	if err != nil {
		b.Fatal(err)
	}
	v := make([]float64, cols)
	for j := range v {
		v[j] = 1 / float64(j+1)
	}
	y := make([]float64, rows)

	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(rows * cols * 8)
		for i := 0; i < b.N; i++ {
			x.MulVec(y, v)
		}
	})
	sweep := []int{1, 2, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	for _, workers := range sweep {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("parallel-w%d", workers), func(b *testing.B) {
			b.SetBytes(rows * cols * 8)
			for i := 0; i < b.N; i++ {
				x.MulVecParallel(y, v, workers)
			}
		})
	}
}

// BenchmarkLogRegPass measures one real objective evaluation (full
// data pass) for binary logistic regression.
func BenchmarkLogRegPass(b *testing.B) {
	const rows = 1024
	g := infimnist.Generator{Seed: 2}
	xs, labels := g.Matrix(0, rows)
	x := mat.NewDenseFrom(xs, rows, infimnist.Features)
	y := make([]float64, rows)
	for i, v := range labels {
		if v == 0 {
			y[i] = 1
		}
	}
	obj, err := logreg.NewObjective(x, y, 1e-4, true)
	if err != nil {
		b.Fatal(err)
	}
	params := make([]float64, obj.Dim())
	grad := make([]float64, obj.Dim())
	b.SetBytes(int64(rows) * infimnist.Features * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj.Eval(params, grad)
	}
}

// BenchmarkKMeansPass measures one real Lloyd iteration (assignment
// scan) at k=5, the paper's configuration.
func BenchmarkKMeansPass(b *testing.B) {
	const rows = 1024
	g := infimnist.Generator{Seed: 2}
	xs, _ := g.Matrix(0, rows)
	x := mat.NewDenseFrom(xs, rows, infimnist.Features)
	init := mat.NewDense(5, infimnist.Features)
	for k := 0; k < 5; k++ {
		img, _ := g.Image(int64(k))
		init.SetRow(k, img)
	}
	b.SetBytes(int64(rows) * infimnist.Features * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kmeans.Run(context.Background(), x, kmeans.Options{K: 5, MaxIterations: 1, InitCentroids: init, RunAllIterations: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKNNBatch measures real k-NN throughput: 32 queries
// answered by one scan of 1024 reference digits.
func BenchmarkKNNBatch(b *testing.B) {
	g := infimnist.Generator{Seed: 4}
	xs, _ := g.Matrix(0, 1024)
	refs := mat.NewDenseFrom(xs, 1024, infimnist.Features)
	qs, _ := g.Matrix(5000, 32)
	queries := mat.NewDenseFrom(qs, 32, infimnist.Features)
	b.SetBytes(1024 * infimnist.Features * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := knn.Search(context.Background(), refs, queries, 5, knn.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInfimnistGenerate measures image-generation throughput
// (matters for materializing multi-GB datasets).
func BenchmarkInfimnistGenerate(b *testing.B) {
	g := infimnist.Generator{Seed: 1}
	dst := make([]float64, infimnist.Features)
	b.SetBytes(infimnist.BytesPerImage)
	for i := 0; i < b.N; i++ {
		g.Fill(dst, int64(i))
	}
}

// BenchmarkBlasKernels measures the level-1/2 kernels that dominate
// training inner loops.
func BenchmarkBlasKernels(b *testing.B) {
	x := make([]float64, infimnist.Features)
	y := make([]float64, infimnist.Features)
	for i := range x {
		x[i] = float64(i%7) - 3
		y[i] = float64(i%5) - 2
	}
	b.Run("Dot784", func(b *testing.B) {
		b.SetBytes(infimnist.Features * 16)
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += blas.Dot(x, y)
		}
		_ = sink
	})
	b.Run("Axpy784", func(b *testing.B) {
		b.SetBytes(infimnist.Features * 16)
		for i := 0; i < b.N; i++ {
			blas.Axpy(0.001, x, y)
		}
	})
	b.Run("SqDist784", func(b *testing.B) {
		b.SetBytes(infimnist.Features * 16)
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += blas.SqDist(x, y)
		}
		_ = sink
	})
	b.Run("Gemm128", func(b *testing.B) {
		const n = 128
		a := make([]float64, n*n)
		bb := make([]float64, n*n)
		c := make([]float64, n*n)
		for i := range a {
			a[i] = float64(i % 13)
			bb[i] = float64(i % 11)
		}
		b.SetBytes(3 * n * n * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blas.Gemm(n, n, n, 1, a, n, bb, n, 0, c, n)
		}
	})
}

// BenchmarkDatasetWrite measures streaming dataset materialization.
func BenchmarkDatasetWrite(b *testing.B) {
	dir := b.TempDir()
	g := infimnist.Generator{Seed: 1}
	const n = 256
	b.SetBytes(n * infimnist.BytesPerImage)
	for i := 0; i < b.N; i++ {
		path := filepath.Join(dir, fmt.Sprintf("w%d.m3", i%4))
		if err := g.WriteDataset(path, n); err != nil {
			b.Fatal(err)
		}
	}
	os.RemoveAll(dir)
}
