package m3

// Transformer API v3: preprocessing stages behind the same
// engine-bound surface as estimators.
//
//	scaler, err := m3.StandardScaler{}.FitTransform(ctx, ds) // blocked fitting scan
//	scaled, err := scaler.Transform(ctx, ds)                 // Engine-materialized
//	defer scaled.Release()
//
// Transform materializes its output *through the Engine*
// (Engine.AllocScratch): the transformed matrix lands on the heap
// when it fits the memory budget and in a temp-file mapping when it
// doesn't, so preprocessing obeys the same Table 1 property as
// training — the code never changes when the data outgrows RAM. The
// transform pass itself runs blocked and parallel on internal/exec
// with ctx cancellation at block granularity. Fitted transformers
// also satisfy Model (Predict reports the leading transformed
// coordinate), so any stage can be saved and reloaded uniformly via
// Load. For chaining stages into one estimator, see Pipeline.

import (
	"context"
	"errors"
	"fmt"

	"m3/internal/core"
	"m3/internal/ml/modelio"
	"m3/internal/ml/preprocess"
)

// Transformer is an unfitted preprocessing configuration; FitTransform
// learns its statistics from a dataset and returns the fitted stage.
type Transformer = core.Transformer

// TransformerModel is a fitted preprocessing stage: whole-dataset
// Transform (Engine-materialized), single-row TransformRow, and Save.
type TransformerModel = core.TransformerModel

// PreprocessOptions configures a scaler's fitting scan.
type PreprocessOptions = preprocess.Options

// BlockTransformer is the operator-fusion contract: a fitted stage
// exposing its per-worker block kernel, so pipeline scans apply the
// stage on the fly instead of materializing an intermediate matrix.
// Every fitted transformer in this package implements it.
type BlockTransformer = core.BlockTransformer

// transformDataset validates the input width and runs the shared
// Engine-mediated materialization pass (core.TransformDataset).
func transformDataset(ctx context.Context, ds *Dataset, wantCols, outCols, workers int, newFn func() core.RowKernel) (*Dataset, error) {
	if ds == nil || ds.X == nil {
		return nil, errors.New("m3: nil dataset")
	}
	if ds.X.Cols() != wantCols {
		return nil, fmt.Errorf("m3: dataset has %d features, transformer wants %d", ds.X.Cols(), wantCols)
	}
	return core.TransformDataset(ctx, ds, outCols, workers, newFn)
}

// stageFunc resolves a stage's per-goroutine row transform: a
// buffer-reusing closure over the stage's block kernel when the stage
// implements BlockTransformer (the returned slice is overwritten by
// the next call), falling back to the allocating TransformRow for
// third-party stages.
func stageFunc(s TransformerModel) func(src []float64) []float64 {
	if bt, ok := s.(BlockTransformer); ok {
		k := bt.BlockKernel()
		buf := make([]float64, bt.OutCols())
		return func(src []float64) []float64 { return k(buf, src) }
	}
	return s.TransformRow
}

// --- Standard scaler --------------------------------------------------

// StandardScaler estimates per-feature mean and standard deviation in
// one blocked parallel scan (per-block Welford moments, Chan-style
// ordered merge) and standardizes features to zero mean and unit
// variance.
type StandardScaler struct {
	// Options tunes the fitting scan (FitOptions...).
	Options PreprocessOptions
}

// FitTransform implements Transformer.
func (e StandardScaler) FitTransform(ctx context.Context, ds *Dataset) (TransformerModel, error) {
	opts := e.Options
	opts.Workers = opts.ResolveWorkers(ds.Workers)
	s, err := preprocess.FitStandard(ctx, ds.X, opts)
	if err != nil {
		return nil, err
	}
	return &FittedStandardScaler{StandardScaler: s, workers: opts.Workers}, nil
}

// FittedStandardScaler is a fitted standardization; the embedded
// preprocess.StandardScaler exposes the per-feature Mean and Std.
type FittedStandardScaler struct {
	*preprocess.StandardScaler
	workers int
}

// NumFeatures returns the input (and output) feature count.
func (f *FittedStandardScaler) NumFeatures() int { return len(f.Mean) }

// Transform standardizes every row of ds into an Engine-materialized
// dataset (heap below the memory budget, mmap-backed above).
func (f *FittedStandardScaler) Transform(ctx context.Context, ds *Dataset) (*Dataset, error) {
	d := f.NumFeatures()
	return transformDataset(ctx, ds, d, d, f.workers, f.BlockKernel)
}

// TransformRow standardizes one row into a fresh slice.
func (f *FittedStandardScaler) TransformRow(row []float64) []float64 {
	out := append([]float64(nil), row...)
	f.StandardScaler.TransformRow(out)
	return out
}

// InCols implements BlockTransformer.
func (f *FittedStandardScaler) InCols() int { return f.NumFeatures() }

// OutCols implements BlockTransformer.
func (f *FittedStandardScaler) OutCols() int { return f.NumFeatures() }

// BlockKernel implements BlockTransformer: per-worker standardization
// with no allocation beyond the caller's destination row.
func (f *FittedStandardScaler) BlockKernel() core.RowKernel {
	return func(dst, src []float64) []float64 {
		copy(dst, src)
		f.StandardScaler.TransformRow(dst)
		return dst
	}
}

// Predict returns the first standardized coordinate (the scalar
// summary of the uniform Model interface; use TransformRow for all
// coordinates).
func (f *FittedStandardScaler) Predict(row []float64) float64 {
	return (row[0] - f.Mean[0]) / f.Std[0]
}

// PredictMatrix returns the first standardized coordinate per row.
func (f *FittedStandardScaler) PredictMatrix(x *Matrix) ([]float64, error) {
	return predictRows(x, f.workers, f.NumFeatures(), f.Predict)
}

// Save persists the scaler via modelio.
func (f *FittedStandardScaler) Save(path string) error {
	return modelio.SaveFile(path, f.StandardScaler)
}

// --- Min-max scaler ---------------------------------------------------

// MinMaxScaler estimates per-feature minima and ranges in one blocked
// parallel scan (exactly associative extrema merge) and rescales
// features into [0, 1].
type MinMaxScaler struct {
	// Options tunes the fitting scan (FitOptions...).
	Options PreprocessOptions
}

// FitTransform implements Transformer.
func (e MinMaxScaler) FitTransform(ctx context.Context, ds *Dataset) (TransformerModel, error) {
	opts := e.Options
	opts.Workers = opts.ResolveWorkers(ds.Workers)
	s, err := preprocess.FitMinMax(ctx, ds.X, opts)
	if err != nil {
		return nil, err
	}
	return &FittedMinMaxScaler{MinMaxScaler: s, workers: opts.Workers}, nil
}

// FittedMinMaxScaler is a fitted range scaling; the embedded
// preprocess.MinMaxScaler exposes the per-feature Min and Range.
type FittedMinMaxScaler struct {
	*preprocess.MinMaxScaler
	workers int
}

// NumFeatures returns the input (and output) feature count.
func (f *FittedMinMaxScaler) NumFeatures() int { return len(f.Min) }

// Transform rescales every row of ds into an Engine-materialized
// dataset (heap below the memory budget, mmap-backed above).
func (f *FittedMinMaxScaler) Transform(ctx context.Context, ds *Dataset) (*Dataset, error) {
	d := f.NumFeatures()
	return transformDataset(ctx, ds, d, d, f.workers, f.BlockKernel)
}

// TransformRow rescales one row into a fresh slice.
func (f *FittedMinMaxScaler) TransformRow(row []float64) []float64 {
	out := append([]float64(nil), row...)
	f.MinMaxScaler.TransformRow(out)
	return out
}

// InCols implements BlockTransformer.
func (f *FittedMinMaxScaler) InCols() int { return f.NumFeatures() }

// OutCols implements BlockTransformer.
func (f *FittedMinMaxScaler) OutCols() int { return f.NumFeatures() }

// BlockKernel implements BlockTransformer: per-worker rescaling with
// no allocation beyond the caller's destination row.
func (f *FittedMinMaxScaler) BlockKernel() core.RowKernel {
	return func(dst, src []float64) []float64 {
		copy(dst, src)
		f.MinMaxScaler.TransformRow(dst)
		return dst
	}
}

// Predict returns the first rescaled coordinate.
func (f *FittedMinMaxScaler) Predict(row []float64) float64 {
	return (row[0] - f.Min[0]) / f.Range[0]
}

// PredictMatrix returns the first rescaled coordinate per row.
func (f *FittedMinMaxScaler) PredictMatrix(x *Matrix) ([]float64, error) {
	return predictRows(x, f.workers, f.NumFeatures(), f.Predict)
}

// Save persists the scaler via modelio.
func (f *FittedMinMaxScaler) Save(path string) error {
	return modelio.SaveFile(path, f.MinMaxScaler)
}

// --- PCA as a transformer ---------------------------------------------

// FitTransform implements Transformer: PCA is both an estimator and a
// dimensionality-reduction stage, so it can sit mid-pipeline between
// a scaler and a final estimator.
func (e PrincipalComponents) FitTransform(ctx context.Context, ds *Dataset) (TransformerModel, error) {
	m, err := e.Fit(ctx, ds)
	if err != nil {
		return nil, err
	}
	return m.(*FittedPCA), nil
}

// NumFeatures returns the input feature count (D).
func (f *FittedPCA) NumFeatures() int { return f.Components.Cols() }

// Transform projects every row of ds onto the K principal components,
// materializing the N×K coordinate matrix through the Engine (heap
// below the memory budget, mmap-backed above). Each worker's kernel
// reuses one centering buffer — no per-row allocation.
func (f *FittedPCA) Transform(ctx context.Context, ds *Dataset) (*Dataset, error) {
	k, d := f.Components.Dims()
	return transformDataset(ctx, ds, d, k, f.workers, f.BlockKernel)
}

// TransformRow projects one row onto the components, returning the K
// coordinates as a fresh slice.
func (f *FittedPCA) TransformRow(row []float64) []float64 {
	out := make([]float64, f.Components.Rows())
	f.PCAResult.Transform(row, out)
	return out
}

// InCols implements BlockTransformer (the source width D).
func (f *FittedPCA) InCols() int { return f.Components.Cols() }

// OutCols implements BlockTransformer (the component count K).
func (f *FittedPCA) OutCols() int { return f.Components.Rows() }

// BlockKernel implements BlockTransformer: per-worker projection with
// one private centering buffer — no per-row allocation.
func (f *FittedPCA) BlockKernel() core.RowKernel {
	centered := make([]float64, f.Components.Cols())
	return func(dst, src []float64) []float64 {
		f.PCAResult.TransformInto(src, dst, centered)
		return dst
	}
}
